"""Circuit components and their MNA stamps.

The MNA unknown vector is ``x = [node voltages, branch currents]``.
Ground resolves to index -1 and is skipped by the stamping helpers.

Each component implements the subset of hooks it needs:

* ``stamp_dc(G, rhs, x, gmin)``       — DC Newton iteration
* ``stamp_tran(G, rhs, x, states, dt, method, t, gmin)`` — transient Newton
* ``update_state(x, states, dt, method)`` — after a transient step is accepted
* ``init_state(x)``                   — state at t=0 (from the DC solution)
* ``stamp_ac(Y, rhs, omega, x_op)``   — small-signal complex stamps

Sign convention: branch currents flow from the first node into the
component and out of the second node.
"""

from __future__ import annotations

import math

import numpy as np

from repro.spice.sources import _as_source
from repro.util import require_positive

#: Thermal voltage at ~300 K, used as the diode default.
VT_300K = 0.02585


def _add(matrix, i, j, value):
    """Stamp ``value`` at (i, j), skipping the ground index -1."""
    if i >= 0 and j >= 0:
        matrix[i, j] += value


def _add_rhs(rhs, i, value):
    if i >= 0:
        rhs[i] += value


class Component:
    """Base class; subclasses set ``needs_branch`` if they add a current
    unknown to the MNA system.

    Components whose transient stamps do not depend on the solution
    vector ``x`` set ``linear_stamps = True`` and implement the split
    hooks :meth:`stamp_tran_matrix` (constant per ``(dt, method)``) and
    :meth:`stamp_tran_rhs` (per-step: source values, companion-model
    state terms).  The transient engine assembles those once per unique
    step size instead of once per Newton iteration; components that
    keep the default ``linear_stamps = False`` are restamped through
    :meth:`stamp_tran` on every iteration, which is always correct.
    """

    needs_branch = False
    linear_stamps = False

    def __init__(self, name, nodes):
        self.name = str(name)
        self.node_names = [str(n) for n in nodes]
        self.nodes = None  # resolved indices, set by Circuit
        self.branch = None  # branch row/column index if needs_branch

    # Default no-op hooks -------------------------------------------------
    def stamp_dc(self, G, rhs, x, gmin):
        pass

    def stamp_tran(self, G, rhs, x, states, dt, method, t, gmin):
        # By default transient behaves like DC (resistors, sources...).
        self.stamp_dc(G, rhs, x, gmin)

    def stamp_tran_matrix(self, G, dt, method):
        """The x- and t-independent matrix part of the transient stamp
        (only consulted when ``linear_stamps`` is True)."""
        raise NotImplementedError(
            f"{type(self).__name__} declares linear_stamps but does not "
            f"implement stamp_tran_matrix")

    def stamp_tran_rhs(self, rhs, states, dt, method, t):
        """The x-independent right-hand-side part of the transient
        stamp (only consulted when ``linear_stamps`` is True)."""
        raise NotImplementedError(
            f"{type(self).__name__} declares linear_stamps but does not "
            f"implement stamp_tran_rhs")

    def sparse_stamps(self, dt, method):
        """COO triplets ``(rows, cols, values)`` of the transient matrix
        stamp, for the sparse assembler (only consulted when
        ``linear_stamps`` is True).

        Contract: the returned *positions* must be a fixed function of
        the circuit topology — identical for every ``(dt, method)`` and
        never value-dependent — because the assembler freezes the union
        sparsity pattern once per circuit family and then refreshes only
        the numeric values.  Duplicate positions are allowed (they sum).

        The default implementation replays :meth:`stamp_tran_matrix`
        into a COO recorder, so components that only implement the dense
        hook (including third-party subclasses) work on the sparse path
        unmodified; override only to skip the recording overhead."""
        from repro.spice.assembler import COORecorder

        recorder = COORecorder()
        self.stamp_tran_matrix(recorder, dt, method)
        return recorder.triplets()

    def stamp_ac(self, Y, rhs, omega, x_op):
        pass

    def init_state(self, x):
        return None

    def update_state(self, x, states, dt, method):
        pass

    def _v(self, x, k):
        """Voltage of our k-th node under solution vector x (0 at ground).

        ``x`` may also be a whole ``(n_steps, n_unknowns)`` solution
        array, in which case the result is the node-voltage column —
        this is what lets ``current`` evaluate a full transient at once.
        """
        idx = self.nodes[k]
        return 0.0 if idx < 0 else x[..., idx]

    def __repr__(self):
        return f"{type(self).__name__}({self.name})"


# ---------------------------------------------------------------------------
# Linear two-terminal elements
# ---------------------------------------------------------------------------
class Resistor(Component):
    """Ideal resistor."""

    linear_stamps = True

    def __init__(self, name, n1, n2, resistance):
        super().__init__(name, [n1, n2])
        self.resistance = require_positive(float(resistance), "resistance")

    def _stamp_g(self, M):
        g = 1.0 / self.resistance
        a, b = self.nodes
        _add(M, a, a, g)
        _add(M, b, b, g)
        _add(M, a, b, -g)
        _add(M, b, a, -g)

    def stamp_dc(self, G, rhs, x, gmin):
        self._stamp_g(G)

    def stamp_tran_matrix(self, G, dt, method):
        self._stamp_g(G)

    def stamp_tran_rhs(self, rhs, states, dt, method, t):
        pass

    def stamp_ac(self, Y, rhs, omega, x_op):
        self._stamp_g(Y)

    def current(self, x):
        """Current flowing n1 -> n2 under solution x."""
        return (self._v(x, 0) - self._v(x, 1)) / self.resistance


class Capacitor(Component):
    """Ideal capacitor with optional initial voltage ``ic``."""

    linear_stamps = True

    def __init__(self, name, n1, n2, capacitance, ic=None):
        super().__init__(name, [n1, n2])
        self.capacitance = require_positive(float(capacitance), "capacitance")
        self.ic = None if ic is None else float(ic)

    def stamp_dc(self, G, rhs, x, gmin):
        # Open circuit at DC; a tiny conductance keeps floating nodes solvable.
        a, b = self.nodes
        _add(G, a, a, gmin)
        _add(G, b, b, gmin)
        _add(G, a, b, -gmin)
        _add(G, b, a, -gmin)

    def init_state(self, x):
        if self.ic is not None or x is None:
            v = self.ic if self.ic is not None else 0.0
        else:
            v = self._v(x, 0) - self._v(x, 1)
        return {"v": v, "i": 0.0}

    def _geq(self, dt, method):
        if method == "trap":
            return 2.0 * self.capacitance / dt
        return self.capacitance / dt

    def stamp_tran(self, G, rhs, x, states, dt, method, t, gmin):
        self.stamp_tran_matrix(G, dt, method)
        self.stamp_tran_rhs(rhs, states, dt, method, t)

    def stamp_tran_matrix(self, G, dt, method):
        geq = self._geq(dt, method)
        a, b = self.nodes
        _add(G, a, a, geq)
        _add(G, b, b, geq)
        _add(G, a, b, -geq)
        _add(G, b, a, -geq)

    def stamp_tran_rhs(self, rhs, states, dt, method, t):
        st = states[self]
        geq = self._geq(dt, method)
        ieq = geq * st["v"] + (st["i"] if method == "trap" else 0.0)
        a, b = self.nodes
        _add_rhs(rhs, a, ieq)
        _add_rhs(rhs, b, -ieq)

    def update_state(self, x, states, dt, method):
        st = states[self]
        v_new = self._v(x, 0) - self._v(x, 1)
        geq = self._geq(dt, method)
        if method == "trap":
            i_new = geq * (v_new - st["v"]) - st["i"]
        else:
            i_new = geq * (v_new - st["v"])
        st["v"] = v_new
        st["i"] = i_new

    def stamp_ac(self, Y, rhs, omega, x_op):
        y = 1j * omega * self.capacitance
        a, b = self.nodes
        _add(Y, a, a, y)
        _add(Y, b, b, y)
        _add(Y, a, b, -y)
        _add(Y, b, a, -y)


class Inductor(Component):
    """Ideal inductor; adds a branch current unknown."""

    needs_branch = True
    linear_stamps = True

    def __init__(self, name, n1, n2, inductance, ic=0.0):
        super().__init__(name, [n1, n2])
        self.inductance = require_positive(float(inductance), "inductance")
        self.ic = float(ic)
        self.couplings = []  # list of (M, other_inductor)

    def _stamp_incidence(self, M):
        a, b = self.nodes
        k = self.branch
        _add(M, a, k, 1.0)
        _add(M, b, k, -1.0)
        _add(M, k, a, 1.0)
        _add(M, k, b, -1.0)

    def stamp_dc(self, G, rhs, x, gmin):
        # DC: a short (branch equation v1 - v2 = R_tiny*i).  The tiny
        # series resistance breaks the singularity of voltage-source /
        # inductor loops without measurably moving any solution.
        self._stamp_incidence(G)
        _add(G, self.branch, self.branch, -1e-9)

    def init_state(self, x):
        return {"i": self.ic if x is None else x[self.branch], "v": 0.0}

    def _leq(self, dt, method):
        factor = 2.0 if method == "trap" else 1.0
        return factor * self.inductance / dt

    def stamp_tran(self, G, rhs, x, states, dt, method, t, gmin):
        self.stamp_tran_matrix(G, dt, method)
        self.stamp_tran_rhs(rhs, states, dt, method, t)

    def stamp_tran_matrix(self, G, dt, method):
        leq = self._leq(dt, method)
        k = self.branch
        self._stamp_incidence(G)
        _add(G, k, k, -leq)
        factor = 2.0 if method == "trap" else 1.0
        for m_val, other in self.couplings:
            _add(G, k, other.branch, -factor * m_val / dt)

    def stamp_tran_rhs(self, rhs, states, dt, method, t):
        st = states[self]
        leq = self._leq(dt, method)
        k = self.branch
        if method == "trap":
            _add_rhs(rhs, k, -st["v"] - leq * st["i"])
        else:
            _add_rhs(rhs, k, -leq * st["i"])
        factor = 2.0 if method == "trap" else 1.0
        for m_val, other in self.couplings:
            meq = factor * m_val / dt
            other_st = states[other]
            # The partner's previous *voltage* term (trap) is already in
            # -st["v"]: state v stores the total branch voltage.
            _add_rhs(rhs, k, -meq * other_st["i"])

    def update_state(self, x, states, dt, method):
        st = states[self]
        st["i"] = x[self.branch]
        st["v"] = self._v(x, 0) - self._v(x, 1)

    def stamp_ac(self, Y, rhs, omega, x_op):
        k = self.branch
        self._stamp_incidence(Y)
        _add(Y, k, k, -1j * omega * self.inductance)
        for m_val, other in self.couplings:
            _add(Y, k, other.branch, -1j * omega * m_val)


class MutualCoupling(Component):
    """Magnetic coupling between two inductors: M = k*sqrt(L1*L2).

    Registers cross terms on both inductors; carries no stamps itself.
    """

    linear_stamps = True

    def __init__(self, name, inductor1, inductor2, k):
        super().__init__(name, [])
        if not (-1.0 < float(k) < 1.0):
            raise ValueError(f"coupling coefficient must be in (-1, 1), got {k}")
        self.l1 = inductor1
        self.l2 = inductor2
        self.k = float(k)
        self.mutual = self.k * math.sqrt(
            inductor1.inductance * inductor2.inductance
        )
        inductor1.couplings.append((self.mutual, inductor2))
        inductor2.couplings.append((self.mutual, inductor1))

    def stamp_tran_matrix(self, G, dt, method):
        pass

    def stamp_tran_rhs(self, rhs, states, dt, method, t):
        pass



# ---------------------------------------------------------------------------
# Independent sources
# ---------------------------------------------------------------------------
class VoltageSource(Component):
    """Independent voltage source; ``value`` is a number or a source
    function from :mod:`repro.spice.sources`."""

    needs_branch = True
    linear_stamps = True

    def __init__(self, name, n1, n2, value):
        super().__init__(name, [n1, n2])
        self.source = _as_source(value)

    def _stamp_incidence(self, M):
        a, b = self.nodes
        k = self.branch
        _add(M, a, k, 1.0)
        _add(M, b, k, -1.0)
        _add(M, k, a, 1.0)
        _add(M, k, b, -1.0)

    def stamp_dc(self, G, rhs, x, gmin):
        self._stamp_incidence(G)
        _add_rhs(rhs, self.branch, self.source.dc_value)

    def stamp_tran(self, G, rhs, x, states, dt, method, t, gmin):
        self._stamp_incidence(G)
        _add_rhs(rhs, self.branch, self.source(t))

    def stamp_tran_matrix(self, G, dt, method):
        self._stamp_incidence(G)

    def stamp_tran_rhs(self, rhs, states, dt, method, t):
        _add_rhs(rhs, self.branch, self.source(t))

    def stamp_ac(self, Y, rhs, omega, x_op):
        self._stamp_incidence(Y)
        _add_rhs(rhs, self.branch, complex(self.source.ac_mag))


class CurrentSource(Component):
    """Independent current source (current flows n1 -> n2 internally,
    i.e. it pushes current *into* n2)."""

    linear_stamps = True

    def __init__(self, name, n1, n2, value):
        super().__init__(name, [n1, n2])
        self.source = _as_source(value)

    def _stamp_value(self, rhs, value):
        a, b = self.nodes
        _add_rhs(rhs, a, -value)
        _add_rhs(rhs, b, value)

    def stamp_dc(self, G, rhs, x, gmin):
        self._stamp_value(rhs, self.source.dc_value)

    def stamp_tran(self, G, rhs, x, states, dt, method, t, gmin):
        self._stamp_value(rhs, self.source(t))

    def stamp_tran_matrix(self, G, dt, method):
        pass

    def stamp_tran_rhs(self, rhs, states, dt, method, t):
        self._stamp_value(rhs, self.source(t))

    def stamp_ac(self, Y, rhs, omega, x_op):
        self._stamp_value(rhs, complex(self.source.ac_mag))


# ---------------------------------------------------------------------------
# Controlled sources
# ---------------------------------------------------------------------------
class Vcvs(Component):
    """Voltage-controlled voltage source: V(n1,n2) = gain * V(cp,cn)."""

    needs_branch = True
    linear_stamps = True

    def __init__(self, name, n1, n2, cp, cn, gain):
        super().__init__(name, [n1, n2, cp, cn])
        self.gain = float(gain)

    def _stamp(self, M):
        a, b, cp, cn = self.nodes
        k = self.branch
        _add(M, a, k, 1.0)
        _add(M, b, k, -1.0)
        _add(M, k, a, 1.0)
        _add(M, k, b, -1.0)
        _add(M, k, cp, -self.gain)
        _add(M, k, cn, self.gain)

    def stamp_dc(self, G, rhs, x, gmin):
        self._stamp(G)

    def stamp_tran_matrix(self, G, dt, method):
        self._stamp(G)

    def stamp_tran_rhs(self, rhs, states, dt, method, t):
        pass

    def stamp_ac(self, Y, rhs, omega, x_op):
        self._stamp(Y)


class Vccs(Component):
    """Voltage-controlled current source: I(n1->n2) = gm * V(cp,cn)."""

    linear_stamps = True

    def __init__(self, name, n1, n2, cp, cn, gm):
        super().__init__(name, [n1, n2, cp, cn])
        self.gm = float(gm)

    def _stamp(self, M):
        a, b, cp, cn = self.nodes
        _add(M, a, cp, self.gm)
        _add(M, a, cn, -self.gm)
        _add(M, b, cp, -self.gm)
        _add(M, b, cn, self.gm)

    def stamp_dc(self, G, rhs, x, gmin):
        self._stamp(G)

    def stamp_tran_matrix(self, G, dt, method):
        self._stamp(G)

    def stamp_tran_rhs(self, rhs, states, dt, method, t):
        pass

    def stamp_ac(self, Y, rhs, omega, x_op):
        self._stamp(Y)


# ---------------------------------------------------------------------------
# Nonlinear devices
# ---------------------------------------------------------------------------
class Diode(Component):
    """Junction diode: I = Is*(exp(V/(n*Vt)) - 1), with a linearised
    continuation above the overflow knee so Newton never sees inf."""

    def __init__(self, name, anode, cathode, i_s=1e-14, n=1.0, vt=VT_300K):
        super().__init__(name, [anode, cathode])
        self.i_s = require_positive(float(i_s), "saturation current")
        self.n = require_positive(float(n), "ideality factor")
        self.vt = require_positive(float(vt), "thermal voltage")
        # Beyond v_max the exponential is continued linearly.
        self.v_max = self.n * self.vt * 40.0

    def iv(self, vd):
        """(current, conductance) at diode voltage ``vd``."""
        nvt = self.n * self.vt
        if vd <= self.v_max:
            e = math.exp(vd / nvt) if vd > -20 * nvt else 0.0
            i = self.i_s * (e - 1.0)
            g = self.i_s * e / nvt if vd > -20 * nvt else 0.0
        else:
            e = math.exp(self.v_max / nvt)
            g = self.i_s * e / nvt
            i = self.i_s * (e - 1.0) + g * (vd - self.v_max)
        return i, g

    def _stamp_newton(self, G, rhs, x, gmin):
        vd = self._v(x, 0) - self._v(x, 1)
        i, g = self.iv(vd)
        g += gmin
        ieq = i - g * vd
        a, b = self.nodes
        _add(G, a, a, g)
        _add(G, b, b, g)
        _add(G, a, b, -g)
        _add(G, b, a, -g)
        _add_rhs(rhs, a, -ieq)
        _add_rhs(rhs, b, ieq)

    def stamp_dc(self, G, rhs, x, gmin):
        self._stamp_newton(G, rhs, x, gmin)

    def stamp_tran(self, G, rhs, x, states, dt, method, t, gmin):
        self._stamp_newton(G, rhs, x, gmin)

    def stamp_ac(self, Y, rhs, omega, x_op):
        vd = self._v(x_op, 0) - self._v(x_op, 1)
        _, g = self.iv(vd)
        a, b = self.nodes
        _add(Y, a, a, g)
        _add(Y, b, b, g)
        _add(Y, a, b, -g)
        _add(Y, b, a, -g)

    def current(self, x):
        """Diode current under solution x (a solution vector or a whole
        ``(n_steps, n_unknowns)`` transient solution array)."""
        vd = self._v(x, 0) - self._v(x, 1)
        if isinstance(vd, np.ndarray) and vd.ndim > 0:
            nvt = self.n * self.vt
            vd_exp = np.clip(vd, -20.0 * nvt, self.v_max)
            e = np.exp(vd_exp / nvt)
            i = self.i_s * (e - 1.0)
            # Reverse saturation floor and linear continuation branches,
            # matching the scalar iv() piecewise definition.
            i = np.where(vd <= -20.0 * nvt, -self.i_s, i)
            g_knee = self.i_s * math.exp(self.v_max / nvt) / nvt
            i = np.where(vd > self.v_max, i + g_knee * (vd - self.v_max), i)
            return i
        return self.iv(vd)[0]


class Mosfet(Component):
    """Level-1 (square-law) MOSFET with channel-length modulation.

    Nodes are (drain, gate, source).  ``polarity`` is ``"n"`` or ``"p"``.
    ``kp`` is the process transconductance (A/V^2); beta = kp*W/L.
    The model is symmetric: for vds < 0 drain and source swap roles.
    """

    def __init__(
        self,
        name,
        drain,
        gate,
        source,
        polarity="n",
        vto=0.5,
        kp=200e-6,
        w=10e-6,
        l=1e-6,
        lam=0.01,
    ):
        super().__init__(name, [drain, gate, source])
        if polarity not in ("n", "p"):
            raise ValueError("polarity must be 'n' or 'p'")
        self.polarity = polarity
        self.vto = float(vto)
        self.kp = require_positive(float(kp), "kp")
        self.w = require_positive(float(w), "w")
        self.l = require_positive(float(l), "l")
        self.lam = float(lam)
        self.beta = self.kp * self.w / self.l

    def _ids(self, vgs, vds):
        """(ids, gm, gds) of the intrinsic n-type device, vds >= 0."""
        vov = vgs - self.vto
        if vov <= 0.0:
            return 0.0, 0.0, 0.0
        clm = 1.0 + self.lam * vds
        if vds < vov:  # triode
            ids = self.beta * (vov * vds - 0.5 * vds * vds) * clm
            gm = self.beta * vds * clm
            gds = (
                self.beta * (vov - vds) * clm
                + self.beta * (vov * vds - 0.5 * vds * vds) * self.lam
            )
        else:  # saturation
            ids = 0.5 * self.beta * vov * vov * clm
            gm = self.beta * vov * clm
            gds = 0.5 * self.beta * vov * vov * self.lam
        return ids, gm, gds

    def evaluate(self, x):
        """(id_drain_to_source, gm, gds, reversed) in external convention.

        ``reversed`` reports whether drain/source swapped internally.
        """
        vd = self._v(x, 0)
        vg = self._v(x, 1)
        vs = self._v(x, 2)
        sign = 1.0 if self.polarity == "n" else -1.0
        vds = sign * (vd - vs)
        vgs = sign * (vg - vs)
        rev = vds < 0.0
        if rev:
            vds = -vds
            vgs = sign * (vg - vd)  # gate-to-(new source = drain terminal)
        ids, gm, gds = self._ids(vgs, vds)
        return ids, gm, gds, rev, sign

    def _stamp_newton(self, G, rhs, x, gmin):
        ids, gm, gds, rev, sign = self.evaluate(x)
        d, g, s = self.nodes
        if rev:
            d, s = s, d
        # Internal (possibly swapped) voltages for the linearised source.
        vd = 0.0 if d < 0 else x[d]
        vg = 0.0 if g < 0 else x[g]
        vs = 0.0 if s < 0 else x[s]
        vgs = sign * (vg - vs)
        vds = sign * (vd - vs)
        ieq = ids - gm * vgs - gds * vds
        # Current sign*ids flows from (internal) drain to source externally.
        # Stamp transconductances.
        _add(G, d, g, sign * sign * gm)  # = gm
        _add(G, d, s, -gm - gds)
        _add(G, d, d, gds + gmin)
        _add(G, s, g, -gm)
        _add(G, s, s, gm + gds + gmin)
        _add(G, s, d, -gds - gmin)
        _add(G, d, s, -gmin)  # gmin drain-source leak
        _add_rhs(rhs, d, -sign * ieq)
        _add_rhs(rhs, s, sign * ieq)

    def stamp_dc(self, G, rhs, x, gmin):
        self._stamp_newton(G, rhs, x, gmin)

    def stamp_tran(self, G, rhs, x, states, dt, method, t, gmin):
        self._stamp_newton(G, rhs, x, gmin)

    def stamp_ac(self, Y, rhs, omega, x_op):
        ids, gm, gds, rev, sign = self.evaluate(x_op)
        d, g, s = self.nodes
        if rev:
            d, s = s, d
        _add(Y, d, g, gm)
        _add(Y, d, s, -gm - gds)
        _add(Y, d, d, gds)
        _add(Y, s, g, -gm)
        _add(Y, s, s, gm + gds)
        _add(Y, s, d, -gds)

    def drain_current(self, x):
        """Signed drain current (positive into the drain for NMOS in
        normal operation)."""
        ids, _, _, rev, sign = self.evaluate(x)
        return -sign * ids if rev else sign * ids


class Switch(Component):
    """Voltage-controlled switch: closed (``r_on``) when
    V(cp) - V(cn) > v_threshold, else open (``r_off``)."""

    def __init__(
        self, name, n1, n2, cp, cn, v_threshold=0.5, r_on=1.0, r_off=1e9
    ):
        super().__init__(name, [n1, n2, cp, cn])
        self.v_threshold = float(v_threshold)
        self.r_on = require_positive(float(r_on), "r_on")
        self.r_off = require_positive(float(r_off), "r_off")

    def is_closed(self, x):
        vc = self._v(x, 2) - self._v(x, 3)
        return vc > self.v_threshold

    def _stamp(self, M, x):
        g = 1.0 / (self.r_on if self.is_closed(x) else self.r_off)
        a, b = self.nodes[0], self.nodes[1]
        _add(M, a, a, g)
        _add(M, b, b, g)
        _add(M, a, b, -g)
        _add(M, b, a, -g)

    def stamp_dc(self, G, rhs, x, gmin):
        self._stamp(G, x)

    def stamp_tran(self, G, rhs, x, states, dt, method, t, gmin):
        self._stamp(G, x)

    def stamp_ac(self, Y, rhs, omega, x_op):
        self._stamp(Y, x_op)

    def current(self, x):
        """Current n1 -> n2 under solution x (a solution vector or a
        whole ``(n_steps, n_unknowns)`` transient solution array)."""
        closed = self.is_closed(x)
        v = self._v(x, 0) - self._v(x, 1)
        if isinstance(closed, np.ndarray) and closed.ndim > 0:
            return v / np.where(closed, self.r_on, self.r_off)
        return v / (self.r_on if closed else self.r_off)
