"""Engineering-notation parsing/formatting and small numeric helpers.

The EDA world talks in SI prefixes ("4u7", "150n", "5MEG") and decibels.
This module provides a single, well-tested implementation used throughout
the library so values read the way a circuit designer expects.
"""

from __future__ import annotations

import math
import re

#: SI prefix -> multiplier.  Keys are case-sensitive except for the special
#: SPICE spellings handled in :func:`parse_eng` ("MEG", "mil").
SI_PREFIXES = {
    "y": 1e-24,
    "z": 1e-21,
    "a": 1e-18,
    "f": 1e-15,
    "p": 1e-12,
    "n": 1e-9,
    "u": 1e-6,
    "µ": 1e-6,
    "m": 1e-3,
    "": 1.0,
    "k": 1e3,
    "K": 1e3,
    "M": 1e6,
    "G": 1e9,
    "T": 1e12,
    "P": 1e15,
}

_ENG_RE = re.compile(
    r"""^\s*
    (?P<sign>[+-]?)
    (?P<mant>\d+\.?\d*|\.\d+)
    (?:[eE](?P<exp>[+-]?\d+))?
    \s*
    (?P<prefix>MEG|meg|[yzafpnuµmkKMGTP]?)
    (?P<unit>[a-zA-ZΩ°%]*)
    \s*$""",
    re.VERBOSE,
)

# Ordered prefixes used when formatting.
_FORMAT_STEPS = [
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
    (1e-15, "f"),
    (1e-18, "a"),
]


def parse_eng(text):
    """Parse an engineering-notation string into a float.

    Accepts plain floats (``"1.5e-6"``), SI prefixes (``"1.5u"``,
    ``"150n"``, ``"4k7"`` is *not* supported — use ``"4.7k"``), the SPICE
    spelling ``"MEG"`` for 1e6, and an optional trailing unit which is
    ignored (``"150 nF"`` -> 1.5e-7).

    >>> parse_eng("15m")
    0.015
    >>> parse_eng("5MEG")
    5000000.0
    >>> parse_eng("2.75 V")
    2.75
    """
    if isinstance(text, (int, float)):
        return float(text)
    match = _ENG_RE.match(str(text))
    if match is None:
        raise ValueError(f"cannot parse engineering value: {text!r}")
    mantissa = float(match.group("sign") + match.group("mant"))
    if match.group("exp") is not None:
        mantissa *= 10.0 ** int(match.group("exp"))
    prefix = match.group("prefix")
    if prefix.upper() == "MEG":
        scale = 1e6
    else:
        scale = SI_PREFIXES[prefix]
    return mantissa * scale


def format_eng(value, unit="", digits=4):
    """Format ``value`` with an SI prefix, e.g. ``format_eng(1.5e-7, "F")``
    -> ``"150 nF"``.

    ``digits`` is the number of significant digits in the mantissa.
    """
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return f"nan {unit}".strip()
    if value == 0:
        return f"0 {unit}".strip()
    magnitude = abs(value)
    for scale, prefix in _FORMAT_STEPS:
        if magnitude >= scale * 0.9999999:
            mant = value / scale
            text = f"{mant:.{digits}g}"
            return f"{text} {prefix}{unit}".strip()
    # Smaller than atto: fall back to scientific notation.
    return f"{value:.{digits}g} {unit}".strip()


def db10(ratio):
    """Power ratio -> decibels (10*log10)."""
    if ratio <= 0:
        raise ValueError(f"dB of non-positive ratio: {ratio}")
    return 10.0 * math.log10(ratio)


def db20(ratio):
    """Amplitude ratio -> decibels (20*log10)."""
    if ratio <= 0:
        raise ValueError(f"dB of non-positive ratio: {ratio}")
    return 20.0 * math.log10(ratio)


def from_db10(db):
    """Decibels -> power ratio."""
    return 10.0 ** (db / 10.0)


def from_db20(db):
    """Decibels -> amplitude ratio."""
    return 10.0 ** (db / 20.0)


def clamp(value, lo, hi):
    """Clamp ``value`` into ``[lo, hi]``."""
    if lo > hi:
        raise ValueError(f"empty clamp interval [{lo}, {hi}]")
    return max(lo, min(hi, value))


def require_positive(value, name):
    """Raise ``ValueError`` unless ``value`` > 0; returns the value."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def require_in_range(value, lo, hi, name):
    """Raise ``ValueError`` unless ``lo <= value <= hi``; returns the value."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value}")
    return value
