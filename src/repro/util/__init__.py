"""Utility helpers: SI-prefixed engineering notation, decibels, validation.

These are the lowest-level helpers in the library; every other subpackage
may depend on them, and they depend on nothing but the standard library.
"""

from repro.util.units import (
    SI_PREFIXES,
    format_eng,
    parse_eng,
    db10,
    db20,
    from_db10,
    from_db20,
    clamp,
    require_positive,
    require_in_range,
)

__all__ = [
    "SI_PREFIXES",
    "format_eng",
    "parse_eng",
    "db10",
    "db20",
    "from_db10",
    "from_db20",
    "clamp",
    "require_positive",
    "require_in_range",
]
