"""Monte-Carlo variability analysis (the paper's stated future work).

"Future works will involve the circuit characterization by means of
measurements" — before silicon comes back, designers characterise by
Monte-Carlo over process/mismatch corners.  This package provides a
compact parameter-perturbation engine and ready-made studies of the
reproduction's critical specs: the 650 mV oxidation potential, the
rectifier charge behaviour, and the demodulator decision margin.
"""

from repro.variability.montecarlo import (
    ParameterSpread,
    MonteCarlo,
    YieldResult,
)
from repro.variability.studies import (
    vox_accuracy_study,
    charge_time_study,
    ask_margin_study,
)

__all__ = [
    "ParameterSpread",
    "MonteCarlo",
    "YieldResult",
    "vox_accuracy_study",
    "charge_time_study",
    "ask_margin_study",
]
