"""A small Monte-Carlo engine: named parameter spreads -> sample metrics.

The engine is deliberately generic: a study supplies parameter spreads
(Gaussian or uniform, absolute or relative) and a ``build(params) ->
metric(s)`` function; the engine samples, evaluates, and summarises
with yield against spec limits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.util import require_positive


@dataclass(frozen=True)
class ParameterSpread:
    """One varying parameter.

    ``sigma`` is the standard deviation (``distribution="gauss"``) or the
    half-width (``"uniform"``); ``relative=True`` scales it by the
    nominal value.
    """

    name: str
    nominal: float
    sigma: float
    distribution: str = "gauss"
    relative: bool = False

    def __post_init__(self):
        if self.distribution not in ("gauss", "uniform"):
            raise ValueError(
                f"unknown distribution {self.distribution!r}")
        if self.sigma < 0:
            raise ValueError("sigma must be >= 0")

    def sample(self, rng):
        scale = self.sigma * (abs(self.nominal) if self.relative else 1.0)
        if self.distribution == "gauss":
            return self.nominal + rng.normal(0.0, scale)
        return self.nominal + rng.uniform(-scale, scale)


@dataclass
class YieldResult:
    """Summary of a Monte-Carlo run for one metric."""

    metric: str
    samples: np.ndarray
    lo_limit: float | None
    hi_limit: float | None

    @property
    def mean(self):
        return float(np.mean(self.samples))

    @property
    def std(self):
        return float(np.std(self.samples, ddof=1)) if self.samples.size > 1 \
            else 0.0

    @property
    def worst_low(self):
        return float(np.min(self.samples))

    @property
    def worst_high(self):
        return float(np.max(self.samples))

    @property
    def yield_fraction(self):
        """Fraction of samples inside [lo_limit, hi_limit]."""
        ok = np.ones(self.samples.size, dtype=bool)
        if self.lo_limit is not None:
            ok &= self.samples >= self.lo_limit
        if self.hi_limit is not None:
            ok &= self.samples <= self.hi_limit
        return float(np.mean(ok))

    def sigma_margin(self):
        """Distance from the mean to the nearest limit, in sigmas
        (inf when unconstrained or spread-free)."""
        if self.std == 0.0:
            return float("inf")
        margins = []
        if self.lo_limit is not None:
            margins.append((self.mean - self.lo_limit) / self.std)
        if self.hi_limit is not None:
            margins.append((self.hi_limit - self.mean) / self.std)
        return min(margins) if margins else float("inf")

    def summary_row(self):
        return (self.metric, self.mean, self.std, self.worst_low,
                self.worst_high, self.yield_fraction)


class MonteCarlo:
    """Sampler over a set of :class:`ParameterSpread`."""

    def __init__(self, spreads, seed=0):
        names = [s.name for s in spreads]
        if len(set(names)) != len(names):
            raise ValueError("duplicate parameter names")
        if not spreads:
            raise ValueError("need at least one parameter spread")
        self.spreads = list(spreads)
        self._rng = np.random.default_rng(seed)

    @staticmethod
    def child_seeds(seed, n_children):
        """``n_children`` independent, deterministic child seeds
        spawned from ``seed`` via :class:`numpy.random.SeedSequence`.

        This is the chunk-seed threading used by the sweep
        orchestrator (:mod:`repro.engine.parallel`): a sharded
        Monte-Carlo run gives chunk ``k`` the ``k``-th child seed, so
        the merged draw sequence is reproducible for any worker count
        and any one chunk can be re-run in isolation."""
        if int(n_children) < 1:
            raise ValueError("n_children must be >= 1")
        root = np.random.SeedSequence(0 if seed is None else int(seed))
        return [int(child.generate_state(1)[0])
                for child in root.spawn(int(n_children))]

    def _resolve_rng(self, seed):
        """The instance stream, or a fresh one for an explicit seed —
        an explicit integer seed makes any single call reproducible
        regardless of how much of the instance stream was consumed."""
        if seed is None:
            return self._rng
        return np.random.default_rng(int(seed))

    def sample_parameters(self, rng=None):
        """One {name: value} draw."""
        rng = rng or self._rng
        return {s.name: s.sample(rng) for s in self.spreads}

    def run(self, evaluate, n_samples=200, seed=None):
        """Evaluate ``evaluate(params) -> {metric: value}`` over draws.

        Returns {metric: np.ndarray of samples}.  ``seed`` of None draws
        from the instance stream; an explicit integer seed re-anchors
        the draw sequence for this call.
        """
        require_positive(n_samples, "n_samples")
        rng = self._resolve_rng(seed)
        collected = {}
        for _ in range(int(n_samples)):
            metrics = evaluate(self.sample_parameters(rng))
            for key, value in metrics.items():
                collected.setdefault(key, []).append(float(value))
        return {k: np.asarray(v) for k, v in collected.items()}

    def run_batch(self, evaluate_batch, n_samples=200, seed=None):
        """Vectorized twin of :meth:`run`.

        ``evaluate_batch({name: np.ndarray}) -> {metric: np.ndarray}``
        sees every parameter as an (n_samples,) array and evaluates all
        samples in one shot (e.g. through
        :class:`~repro.engine.scenario.ScenarioBatch`).  Draws are taken
        sample-major, so for a given seed the parameter values are
        *identical* to the ones :meth:`run` would see.
        """
        require_positive(n_samples, "n_samples")
        rng = self._resolve_rng(seed)
        draws = [self.sample_parameters(rng)
                 for _ in range(int(n_samples))]
        params = {s.name: np.array([d[s.name] for d in draws])
                  for s in self.spreads}
        metrics = evaluate_batch(params)
        out = {}
        for key, values in metrics.items():
            values = np.asarray(values, dtype=float)
            if values.shape != (int(n_samples),):
                raise ValueError(
                    f"batch metric {key!r} has shape {values.shape}, "
                    f"expected ({int(n_samples)},)")
            out[key] = values
        return out

    def yield_analysis(self, evaluate, limits, n_samples=200, seed=None,
                       batch=False):
        """Run and wrap each metric in a :class:`YieldResult`.

        ``limits`` maps metric -> (lo, hi); use None for one-sided.
        With ``batch=True``, ``evaluate`` is a vectorized
        ``evaluate_batch`` (see :meth:`run_batch`).
        """
        runner = self.run_batch if batch else self.run
        raw = runner(evaluate, n_samples, seed=seed)
        results = {}
        for metric, samples in raw.items():
            lo, hi = limits.get(metric, (None, None))
            results[metric] = YieldResult(metric, samples, lo, hi)
        return results
