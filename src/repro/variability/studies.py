"""Ready-made Monte-Carlo studies of the reproduction's critical specs.

Each study returns ``{metric: YieldResult}`` so benches and tests can
assert yields; spreads are typical 0.18 um process/mismatch figures.
"""

from __future__ import annotations

import numpy as np

from repro.engine.scenario import Scenario, ScenarioBatch
from repro.power import RectifierEnvelopeModel
from repro.sensor.bandgap import BandgapReference
from repro.variability.montecarlo import MonteCarlo, ParameterSpread


def vox_accuracy_study(n_samples=300, seed=1):
    """How accurate is the 650 mV WE-RE potential across corners?

    Spreads: bandgap untrimmed offsets (+/-1% sigma), curvature spread,
    temperature over the body range (uniform 33-40 C), supply 2.1-3.0 V
    at the regulator input -> 1.8 V +/- load regulation.

    Spec: the oxidation wave (~60 mV width) tolerates roughly +/-30 mV
    before the operating point slides visibly; yield is measured against
    650 +/- 30 mV.
    """
    spreads = [
        ParameterSpread("v_we_nom", 1.2, 0.01, relative=True),
        ParameterSpread("v_re_nom", 0.55, 0.01, relative=True),
        ParameterSpread("curv_we", 1.2e-6, 0.3e-6),
        ParameterSpread("curv_re", 2.0e-6, 0.5e-6),
        ParameterSpread("temperature", 36.5, 3.5, distribution="uniform"),
        ParameterSpread("vdd", 1.8, 0.02),
    ]

    def evaluate(p):
        we = BandgapReference(v_nominal=p["v_we_nom"],
                              curvature=abs(p["curv_we"]))
        re = BandgapReference(v_nominal=p["v_re_nom"],
                              curvature=abs(p["curv_re"]),
                              supply_sensitivity=1.5e-3, vdd_min=1.0)
        vox = (we.output(p["temperature"], p["vdd"])
               - re.output(p["temperature"], p["vdd"]))
        return {"vox_mv": vox * 1e3}

    mc = MonteCarlo(spreads, seed=seed)
    return mc.yield_analysis(evaluate, {"vox_mv": (620.0, 680.0)},
                             n_samples=n_samples)


def charge_time_study(n_samples=120, seed=2):
    """Does Co still charge in time across component corners?

    Spreads: Co +/-10% (capacitor tolerance), rectifier efficiency
    +/-5% absolute, delivered power +/-15% (coupling/placement), load
    +/-10%.  Spec: the rail must clear 2.75 V within 500 us and the
    equilibrium must stay under the 3.3 V device limit.

    All samples are evaluated in one shot through
    :class:`~repro.engine.scenario.ScenarioBatch` (one rectifier-variant
    scenario per Monte-Carlo draw, rail dynamics vectorized across the
    batch); the draws and the metrics match the per-sample path (see
    tests/test_variability.py).
    """
    spreads = [
        ParameterSpread("c_out", 250e-9, 0.10, relative=True),
        ParameterSpread("efficiency", 0.9, 0.05),
        ParameterSpread("p_in", 5e-3, 0.15, relative=True),
        ParameterSpread("i_load", 352e-6, 0.10, relative=True),
    ]

    def evaluate_batch(p):
        models = [
            RectifierEnvelopeModel(c_out=max(c, 50e-9),
                                   efficiency=float(np.clip(e, 0.3, 1.0)))
            for c, e in zip(p["c_out"], p["efficiency"])
        ]
        batch = ScenarioBatch([Scenario(distance=10e-3, rectifier=m)
                               for m in models])
        t_charge = batch.charge_times(np.maximum(p["p_in"], 1e-4), 2.75,
                                      i_load=np.maximum(p["i_load"], 0.0))
        equilibrium = batch.run_envelope(p["p_in"], 1.5e-3,
                                         i_load=p["i_load"]).v_final
        return {
            "charge_time_us": np.where(np.isnan(t_charge), 1e6,
                                       t_charge * 1e6),
            "v_equilibrium": equilibrium,
        }

    mc = MonteCarlo(spreads, seed=seed)
    return mc.yield_analysis(
        evaluate_batch,
        {"charge_time_us": (None, 500.0), "v_equilibrium": (2.1, 3.3)},
        n_samples=n_samples, batch=True)


def ask_margin_study(n_samples=200, seed=3):
    """Demodulator decision margin across corners.

    The slicer threshold sits between the held peak for a 1 and for a 0;
    spreads on modulation depth (R7/R8 tolerance), link gain, comparator
    offset and envelope ripple erode the margin.  Spec: margin > 0 (the
    bit is still decidable), with yield target at > 10% of the high
    level.
    """
    spreads = [
        ParameterSpread("depth", 0.42, 0.05, relative=True),
        ParameterSpread("level_high", 1.0, 0.10, relative=True),
        ParameterSpread("comp_offset", 0.0, 0.01),
        ParameterSpread("ripple", 0.02, 0.01),
    ]

    def evaluate(p):
        high = max(p["level_high"], 0.1)
        depth = float(np.clip(p["depth"], 0.0, 0.95))
        low = high * (1.0 - depth)
        threshold = 0.5 * (high + low) + p["comp_offset"]
        ripple = abs(p["ripple"]) * high
        margin = min(high - ripple - threshold,
                     threshold - (low + ripple))
        return {"margin_frac": margin / high}

    mc = MonteCarlo(spreads, seed=seed)
    return mc.yield_analysis(evaluate, {"margin_frac": (0.10, None)},
                             n_samples=n_samples)
