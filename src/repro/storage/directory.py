"""The local npz-directory backend (the original ``ResultStore``).

Cells live as ``.npz`` files under a two-level sharded directory
(``root/<key[:2]>/<key>.npz``).  LRU order is tracked in an in-memory
index (rebuilt once per backend instance from file mtimes) so ``put``
never rescans the directory; hits still touch the file mtime so a
*future* instance — or another process sharing the directory —
rebuilds the same order.

Writes go through a temp file + atomic rename, so two processes
sharing one cache directory can race on the same cell and both leave
a complete ``.npz`` behind; a cell evicted under a concurrent
reader's feet simply reads as a miss and is recomputed.
"""

from __future__ import annotations

import os

from repro.storage.base import (
    StoreBackend,
    probe_directory_writable,
    read_npz,
    write_npz_atomic,
)


class DirectoryBackend(StoreBackend):
    """Scenario-hash -> ``.npz`` store rooted at ``root``.

    ``get``/``put`` move dicts of numpy arrays; writes go through a
    temp file + atomic rename so a crashed sweep never leaves a
    half-written cell that later reads as a corrupt hit.
    """

    kind = "dir"

    def __init__(self, root, max_entries=None):
        super().__init__()
        self.root = os.path.expanduser(str(root))
        os.makedirs(self.root, exist_ok=True)
        if max_entries is not None and int(max_entries) < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = None if max_entries is None else int(max_entries)
        self.uri = f"{self.kind}://{self.root}"
        # In-memory LRU index: {path: None}, oldest first.  Built once
        # (lazily) from file mtimes; after that every put/get is an
        # O(1) dict move instead of a directory rescan.
        self._index = None

    def _path(self, key):
        return os.path.join(self.root, key[:2], key + ".npz")

    def _scan(self):
        """(mtime, path) for every stored cell — the startup scan."""
        out = []
        for shard in os.listdir(self.root):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in os.listdir(shard_dir):
                if not name.endswith(".npz"):
                    continue
                path = os.path.join(shard_dir, name)
                try:
                    out.append((os.path.getmtime(path), path))
                except OSError:
                    continue
        return out

    def _lru(self):
        """The in-memory LRU index, rebuilt from disk on first use."""
        if self._index is None:
            self._index = {path: None for _, path in sorted(self._scan())}
        return self._index

    def _touch(self, path):
        """Move ``path`` to the most-recent end of the LRU index."""
        index = self._lru()
        index.pop(path, None)
        index[path] = None

    def __len__(self):
        # Directory truth, not the in-memory index: another process
        # sharing the root may have added or evicted cells since this
        # instance's index was built.
        return len(self._scan())

    def get(self, key):
        path = self._path(key)
        try:
            arrays = read_npz(path)
        except (OSError, ValueError, EOFError, KeyError):
            # Missing cell, or one corrupted mid-write by a hard kill:
            # either way it is a miss and will be recomputed.
            with self._lock:
                self.stats.misses += 1
            return None
        try:
            os.utime(path)
        except OSError:
            # A concurrent process evicted the cell between the load
            # and the LRU touch; the data is already in hand.
            pass
        with self._lock:
            self._touch(path)
            self.stats.hits += 1
        return arrays

    def put(self, key, arrays):
        path = self._path(key)
        write_npz_atomic(path, arrays)
        with self._lock:
            self.stats.writes += 1
            self._touch(path)
        if self.max_entries is not None and len(self._index) > self.max_entries:
            self.evict()

    def contains(self, key):
        return os.path.exists(self._path(key))

    def evict(self):
        """Drop oldest-known cells until the index fits the bound.

        A cell already removed by a concurrent process just falls out
        of the index without counting as an eviction here — the other
        process already accounted for it, so shared directories never
        double-count (or double-delete) a cell.
        """
        if self.max_entries is None:
            return 0
        dropped = 0
        with self._lock:
            index = self._lru()
            excess = len(index) - self.max_entries
            for path in list(index)[:excess]:
                del index[path]
                try:
                    os.unlink(path)
                except OSError:
                    continue
                self.stats.evictions += 1
                dropped += 1
        return dropped

    def clear(self):
        """Drop every stored cell (keeps the root directory).  Scans
        the directory rather than trusting the index, so cells written
        by a concurrent process are dropped too."""
        for _, path in self._scan():
            try:
                os.unlink(path)
            except OSError:
                continue
        self._index = {}

    def _writable_probe(self):
        return probe_directory_writable(self.root)
