"""The sharded/tiered composite backend.

Two compositions in one class:

* **Sharding** — cells are hash-partitioned over N child backends by
  their content address (``int(key[:8], 16) % N``), so a huge cache
  splits its index/directory load across children, and children can
  later live on different disks (or nodes) without changing a single
  key.
* **Hot tier** — an in-memory :class:`~repro.storage.memory.
  MemoryBackend` LRU in front of the children absorbs the repeat
  lookups of a serving workload (the same cells hit over and over
  within a session) without touching disk.

The hot tier is write-through: every ``put`` lands in its shard child
*and* in memory, so the persistent tier is always complete and the
memory tier is pure acceleration — losing it can only cost latency.

``stats`` counts at the composite surface (a hot-tier hit and a child
hit are both one ``hits``); :attr:`hot_hits` separates how many hits
the memory tier absorbed.  ``health`` aggregates the children: the
composite is healthy only when every shard is.
"""

from __future__ import annotations

import time

from repro.storage.base import StoreBackend
from repro.storage.memory import MemoryBackend


class TieredBackend(StoreBackend):
    """Hash-sharded children behind an in-memory hot tier.

    Parameters
    ----------
    children : sequence of :class:`StoreBackend` shards (at least 1).
        Cell -> shard assignment depends only on the key and the shard
        count, so re-opening the same children in the same order sees
        the same cells.
    hot_entries : hot-tier LRU bound (0 disables the memory tier).
    uri : optional ``open_backend`` URI this composite was built from
        (set by the factory; composites assembled by hand are not
        re-openable from a string).
    """

    kind = "tiered"

    def __init__(self, children, hot_entries=256, uri=None):
        super().__init__()
        self.children = list(children)
        if not self.children:
            raise ValueError("tiered backend needs at least one child")
        if int(hot_entries) < 0:
            raise ValueError("hot_entries must be >= 0")
        self.hot = MemoryBackend(max_entries=hot_entries) if hot_entries else None
        self.hot_hits = 0
        self.uri = uri

    def _child(self, key):
        return self.children[int(key[:8], 16) % len(self.children)]

    def __len__(self):
        # The persistent tier is complete (write-through hot tier), so
        # the composite size is the shard sum.
        return sum(len(child) for child in self.children)

    def get(self, key):
        if self.hot is not None:
            arrays = self.hot.get(key)
            if arrays is not None:
                with self._lock:
                    self.stats.hits += 1
                    self.hot_hits += 1
                return arrays
        arrays = self._child(key).get(key)
        with self._lock:
            if arrays is None:
                self.stats.misses += 1
                return None
            self.stats.hits += 1
        if self.hot is not None:
            self.hot.put(key, arrays)
        return arrays

    def put(self, key, arrays):
        self._child(key).put(key, arrays)
        if self.hot is not None:
            self.hot.put(key, arrays)
        with self._lock:
            self.stats.writes += 1

    def contains(self, key):
        if self.hot is not None and self.hot.contains(key):
            return True
        return self._child(key).contains(key)

    def evict(self):
        dropped = sum(child.evict() for child in self.children)
        with self._lock:
            self.stats.evictions += dropped
        return dropped

    def clear(self):
        for child in self.children:
            child.clear()
        if self.hot is not None:
            self.hot.clear()

    def close(self):
        for child in self.children:
            child.close()

    def health(self):
        """Aggregate shard health: ok/writable only when every child
        is; ``entries`` is the shard sum; per-shard documents ride in
        ``"children"`` (dropped from the flat ``store_backend``
        metrics event, which carries the aggregate)."""
        t0 = time.perf_counter()
        children = [child.health() for child in self.children]
        doc = {
            "backend": self.kind,
            "ok": all(child["ok"] for child in children),
            "writable": all(child["writable"] for child in children),
            "entries": sum(child["entries"] for child in children),
            "children": children,
        }
        doc["elapsed_s"] = time.perf_counter() - t0
        return doc

    def _writable_probe(self):
        return all(child._writable_probe() for child in self.children)
