"""The sqlite-indexed backend: a single-file index + an npz blob dir.

The directory backend pays a full directory scan to learn its LRU
order (once per instance) and to answer ``len``.  This backend keeps
the index in one sqlite file instead — ``get``/``put``/``contains``
and the LRU-eviction order are all O(1)-ish index queries regardless
of how many cells are stored, which is what a long-lived shared cache
in front of a serving tier needs.

Layout under ``root``::

    index.sqlite             -- the cell index (WAL mode)
    blobs/<key[:2]>/<key>.npz

Blob writes stay temp-file + atomic rename (the same crash/concurrency
contract as every backend).  The index is advisory: a row whose blob
was removed by a concurrent process reads as a miss and the stale row
is dropped; a blob whose row is missing is re-indexed on the next
``put`` of that key.  WAL mode + a busy timeout make one file safely
shareable between the service's scheduler threads and worker
processes.
"""

from __future__ import annotations

import os
import sqlite3
import time

from repro.storage.base import (
    StoreBackend,
    probe_directory_writable,
    read_npz,
    write_npz_atomic,
)


class SqliteBackend(StoreBackend):
    """Scenario-hash -> ``.npz`` store with a sqlite cell index."""

    kind = "sqlite"

    def __init__(self, root, max_entries=None):
        super().__init__()
        self.root = os.path.expanduser(str(root))
        os.makedirs(self.root, exist_ok=True)
        if max_entries is not None and int(max_entries) < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = None if max_entries is None else int(max_entries)
        self.uri = f"{self.kind}://{self.root}"
        self.index_path = os.path.join(self.root, "index.sqlite")
        self._blob_root = os.path.join(self.root, "blobs")
        # One connection per backend instance, shared across threads
        # under self._lock (sqlite's own locking covers processes).
        self._conn = sqlite3.connect(
            self.index_path, timeout=10.0, check_same_thread=False
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute("PRAGMA busy_timeout=10000")
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS cells ("
            " key TEXT PRIMARY KEY,"
            " path TEXT NOT NULL,"
            " last_used REAL NOT NULL)"
        )
        self._conn.execute(
            "CREATE INDEX IF NOT EXISTS cells_last_used ON cells (last_used)"
        )
        self._conn.commit()

    def _path(self, key):
        return os.path.join(self._blob_root, key[:2], key + ".npz")

    def __len__(self):
        with self._lock:
            (count,) = self._conn.execute("SELECT COUNT(*) FROM cells").fetchone()
        return int(count)

    def get(self, key):
        path = self._path(key)
        try:
            arrays = read_npz(path)
        except (OSError, ValueError, EOFError, KeyError):
            # Miss.  Drop any stale index row (the blob is gone —
            # evicted or never landed) so eviction order stays honest.
            with self._lock:
                self._conn.execute("DELETE FROM cells WHERE key = ?", (key,))
                self._conn.commit()
                self.stats.misses += 1
            return None
        with self._lock:
            self._conn.execute(
                "INSERT INTO cells (key, path, last_used) VALUES (?, ?, ?) "
                "ON CONFLICT(key) DO UPDATE SET last_used = excluded.last_used",
                (key, path, time.time()),
            )
            self._conn.commit()
            self.stats.hits += 1
        return arrays

    def put(self, key, arrays):
        path = self._path(key)
        write_npz_atomic(path, arrays)
        with self._lock:
            self._conn.execute(
                "INSERT INTO cells (key, path, last_used) VALUES (?, ?, ?) "
                "ON CONFLICT(key) DO UPDATE SET last_used = excluded.last_used",
                (key, path, time.time()),
            )
            self._conn.commit()
            self.stats.writes += 1
        if self.max_entries is not None:
            self.evict()

    def contains(self, key):
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM cells WHERE key = ?", (key,)
            ).fetchone()
        if row is not None:
            return True
        # The index is advisory — trust the blob over a missing row.
        return os.path.exists(self._path(key))

    def evict(self):
        """Drop least-recently-used cells past ``max_entries``."""
        if self.max_entries is None:
            return 0
        dropped = 0
        with self._lock:
            (count,) = self._conn.execute("SELECT COUNT(*) FROM cells").fetchone()
            excess = int(count) - self.max_entries
            if excess <= 0:
                return 0
            victims = self._conn.execute(
                "SELECT key, path FROM cells ORDER BY last_used, key LIMIT ?",
                (excess,),
            ).fetchall()
            for key, path in victims:
                self._conn.execute("DELETE FROM cells WHERE key = ?", (key,))
                try:
                    os.unlink(path)
                except OSError:
                    continue
                self.stats.evictions += 1
                dropped += 1
            self._conn.commit()
        return dropped

    def clear(self):
        with self._lock:
            rows = self._conn.execute("SELECT path FROM cells").fetchall()
            self._conn.execute("DELETE FROM cells")
            self._conn.commit()
        for (path,) in rows:
            try:
                os.unlink(path)
            except OSError:
                continue
        # Blobs written by another process (whose rows this index never
        # saw) are dropped too — clear means clear.
        if os.path.isdir(self._blob_root):
            for shard in os.listdir(self._blob_root):
                shard_dir = os.path.join(self._blob_root, shard)
                if not os.path.isdir(shard_dir):
                    continue
                for name in os.listdir(shard_dir):
                    if name.endswith(".npz"):
                        try:
                            os.unlink(os.path.join(shard_dir, name))
                        except OSError:
                            continue

    def close(self):
        with self._lock:
            self._conn.close()

    def _writable_probe(self):
        return probe_directory_writable(self.root)
