"""The pluggable storage-backend interface and its shared plumbing.

Every backend stores *content-addressed result cells*: a cell key is
the SHA-256 of the cell's full physics fingerprint (assembled in
:mod:`repro.engine.parallel`), and a cell value is a dict of numpy
arrays.  Because keys are content hashes there is no invalidation
protocol anywhere in the subsystem — a changed controller gain, tissue
stack, or engine constant simply misses.

:class:`StoreBackend` is the contract the orchestrator, the service
scheduler, and the CLI all program against:

* ``get``/``put``/``contains``/``__len__``/``clear`` move cells;
* ``put`` must be *atomic* — a concurrent reader (thread or process)
  never observes a half-written cell, it observes a miss or a
  complete cell;
* ``evict`` enforces the backend's ``max_entries`` bound now (LRU
  order) and returns how many cells were dropped;
* ``stats`` is a :class:`StoreStats` counter block for one backend
  lifetime;
* ``health`` is a cheap liveness/writability probe (the service
  ``/healthz`` document and the ``store_backend`` metrics event);
* ``uri`` round-trips the backend through
  :func:`repro.storage.open_backend` — worker processes re-open the
  same backend from the string instead of pickling live handles.

Backends are thread-safe for the index/counter bookkeeping (one lock
per backend): the serving tier reads and writes one shared backend
from several scheduler executor threads.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import tempfile
import threading
import time
from dataclasses import dataclass

import numpy as np

#: Bump when the stored row layout or fingerprint layout changes; the
#: version participates in every key, so old cells simply stop matching.
STORE_SCHEMA_VERSION = 1


def _canonical_value(obj):
    """Recursively reduce a fingerprint payload to canonical plain data.

    Beyond numpy scalars/arrays, non-finite floats are rewritten to a
    tagged one-key dict: ``json.dumps`` would otherwise emit bare
    ``NaN``/``Infinity`` tokens (invalid JSON, and a foot-gun for any
    non-Python consumer of the key scheme).  The tag is a dict — not a
    bare string — so a payload that legitimately contains the *string*
    ``"NaN"`` can never collide with a payload containing the float.
    """
    if isinstance(obj, (np.floating, np.integer, np.bool_)):
        obj = obj.item()
    if isinstance(obj, np.ndarray):
        obj = obj.tolist()
    if isinstance(obj, float) and not math.isfinite(obj):
        if math.isnan(obj):
            return {"__nonfinite__": "nan"}
        return {"__nonfinite__": "inf" if obj > 0 else "-inf"}
    if isinstance(obj, dict):
        return {str(k): _canonical_value(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_canonical_value(v) for v in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot fingerprint {type(obj).__name__!r} values")


def canonical_key(payload):
    """SHA-256 hex digest of a plain-data payload, via canonical JSON
    (sorted keys, no whitespace) so logically-equal fingerprints hash
    identically regardless of dict construction order.  Non-finite
    floats are canonicalized explicitly (``allow_nan=False`` guards
    against any slipping through as invalid JSON)."""
    blob = json.dumps(
        _canonical_value(payload),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class StoreStats:
    """Hit/miss accounting for one backend lifetime."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0

    @property
    def lookups(self):
        return self.hits + self.misses

    def as_dict(self):
        return {
            "hits": self.hits,
            "misses": self.misses,
            "lookups": self.lookups,
            "writes": self.writes,
            "evictions": self.evictions,
        }


def write_npz_atomic(path, arrays):
    """Write ``arrays`` as one ``.npz`` blob via temp file + atomic
    rename — two processes racing on the same cell both leave a
    complete blob behind, and a crashed writer leaves nothing that
    later reads as a corrupt hit."""
    os.makedirs(os.path.dirname(path), exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez(fh, **arrays)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def read_npz(path):
    """Load one ``.npz`` blob as a dict of arrays (raises OSError /
    ValueError / EOFError / KeyError for missing or torn blobs — the
    caller maps those to a counted miss)."""
    with np.load(path) as archive:
        return {name: archive[name] for name in archive.files}


class StoreBackend:
    """Abstract content-addressed cell store (see module docstring).

    Subclasses set :attr:`kind` (the short backend name reported by
    :meth:`health` and the URI scheme), keep :attr:`stats` and
    :attr:`uri` current, and implement the five data methods plus
    :meth:`_writable_probe`.
    """

    #: Short backend name; doubles as the URI scheme.
    kind = "abstract"
    #: ``open_backend``-compatible URI for this backend, or None when
    #: the backend cannot be re-opened from a string (e.g. in-memory).
    uri = None

    def __init__(self):
        self.stats = StoreStats()
        self._lock = threading.RLock()

    # -- the data plane -------------------------------------------------
    def get(self, key):
        """The stored arrays for ``key``, or None (counted as a miss).
        A hit refreshes the cell's LRU position."""
        raise NotImplementedError

    def put(self, key, arrays):
        """Store ``arrays`` (a dict of numpy arrays) under ``key``
        atomically, then enforce the entry bound."""
        raise NotImplementedError

    def contains(self, key):
        """Whether ``key`` is currently stored (no stats counted, no
        LRU refresh — a pure existence probe)."""
        raise NotImplementedError

    def __len__(self):
        raise NotImplementedError

    def clear(self):
        """Drop every stored cell (keeps the backend usable)."""
        raise NotImplementedError

    def evict(self):
        """Enforce the backend's entry bound now; returns the number
        of cells dropped (0 for unbounded backends)."""
        return 0

    def close(self):
        """Release any handles; the backend must not be used after."""

    # -- the health probe -----------------------------------------------
    def _writable_probe(self):
        """Prove one write can land (cheap; no cell is created)."""
        raise NotImplementedError

    def health(self):
        """Liveness document: ``{"backend", "ok", "writable",
        "entries", "elapsed_s"}`` (+ ``"error"`` when the probe
        failed).  Never raises — an unreachable backend reports
        ``ok: False`` so the service ``/healthz`` can degrade to 503
        instead of 500."""
        t0 = time.perf_counter()
        doc = {
            "backend": self.kind,
            "ok": False,
            "writable": False,
            "entries": 0,
        }
        try:
            doc["entries"] = int(len(self))
            doc["writable"] = bool(self._writable_probe())
            doc["ok"] = doc["writable"]
        except Exception as exc:  # noqa: BLE001 - probe must not raise
            doc["error"] = f"{type(exc).__name__}: {exc}"
        doc["elapsed_s"] = time.perf_counter() - t0
        return doc

    # -- context management ---------------------------------------------
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


def probe_directory_writable(root):
    """The shared writability probe for directory-rooted backends:
    create and remove one temp file under ``root``."""
    fd, tmp = tempfile.mkstemp(dir=root, suffix=".probe")
    os.close(fd)
    os.unlink(tmp)
    return True
