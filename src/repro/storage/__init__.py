"""Pluggable content-addressed storage backends.

The storage subsystem behind the sweep orchestrator's result cache
and the serving tier's cross-worker dedup: one
:class:`~repro.storage.base.StoreBackend` contract, several
implementations, selected by URI (see :mod:`repro.storage.uri`).

* :class:`DirectoryBackend` — ``dir://`` local npz directory (the
  original ``ResultStore``, still exported from ``repro.engine``);
* :class:`SqliteBackend` — ``sqlite://`` single-file index + blob
  dir, O(1) lookups without directory scans;
* :class:`TieredBackend` — ``tiered://`` hash-sharded children with
  an in-memory hot tier;
* :class:`MemoryBackend` — ``mem://`` process-local LRU.
"""

from repro.storage.base import (
    STORE_SCHEMA_VERSION,
    StoreBackend,
    StoreStats,
    canonical_key,
)
from repro.storage.directory import DirectoryBackend
from repro.storage.memory import MemoryBackend
from repro.storage.sqlite import SqliteBackend
from repro.storage.tiered import TieredBackend
from repro.storage.uri import BackendURIError, open_backend

__all__ = [
    "STORE_SCHEMA_VERSION",
    "BackendURIError",
    "DirectoryBackend",
    "MemoryBackend",
    "SqliteBackend",
    "StoreBackend",
    "StoreStats",
    "TieredBackend",
    "canonical_key",
    "open_backend",
]
