"""Backend URIs: one string selects and configures a store backend.

``repro sweep --store`` / ``repro serve --store`` and the service
config all take a backend URI; worker processes of the multi-worker
serving tier re-open the parent's backend from the same string (live
backend handles never cross a process boundary).

Supported forms::

    dir://PATH[?max_entries=N]      local npz directory (the default)
    sqlite://PATH[?max_entries=N]   sqlite index + npz blob dir
    tiered://PATH[?shards=N&child=dir|sqlite&hot=K&max_entries=N]
                                    N hash-sharded children under
                                    PATH/shard-<k>, hot-tier LRU of K
    mem://[?max_entries=N]          process-local in-memory LRU

A bare path (no ``://``) opens a :class:`DirectoryBackend` — exactly
the old ``--cache-dir`` behaviour, so every existing invocation keeps
working.  ``max_entries`` bounds each *persistent* backend (for
``tiered`` it is the per-shard bound).  Unknown schemes and unknown
query parameters raise :class:`BackendURIError` naming the offender —
a typo must never silently open a default backend.
"""

from __future__ import annotations

import os
from urllib.parse import parse_qsl

from repro.storage.base import StoreBackend
from repro.storage.directory import DirectoryBackend
from repro.storage.memory import MemoryBackend
from repro.storage.sqlite import SqliteBackend
from repro.storage.tiered import TieredBackend


class BackendURIError(ValueError):
    """A backend URI that cannot be opened (unknown scheme, missing
    path, unknown or invalid parameter)."""


_TIERED_CHILDREN = {"dir": DirectoryBackend, "sqlite": SqliteBackend}


def _int_param(params, name, default=None):
    if name not in params:
        return default
    raw = params.pop(name)
    try:
        return int(raw)
    except (TypeError, ValueError):
        raise BackendURIError(f"backend URI parameter {name}={raw!r} is not an integer")


def open_backend(spec, max_entries=None):
    """Open a backend from ``spec`` (URI string, bare path, or an
    already-open :class:`StoreBackend`, returned as-is).

    ``max_entries`` is the default entry bound applied when the URI
    does not carry its own ``max_entries`` parameter.
    """
    if spec is None:
        raise BackendURIError("backend spec must not be None")
    if isinstance(spec, StoreBackend):
        return spec
    text = str(spec)
    if "://" not in text:
        return DirectoryBackend(text, max_entries=max_entries)
    scheme, _, rest = text.partition("://")
    scheme = scheme.lower()
    path, _, query = rest.partition("?")
    params = dict(parse_qsl(query, keep_blank_values=True))
    max_entries = _int_param(params, "max_entries", max_entries)

    if scheme == "mem":
        backend = MemoryBackend(max_entries=max_entries)
    elif scheme in ("dir", "sqlite"):
        if not path:
            raise BackendURIError(f"{scheme}:// URI needs a path: {text!r}")
        cls = DirectoryBackend if scheme == "dir" else SqliteBackend
        backend = cls(path, max_entries=max_entries)
    elif scheme == "tiered":
        if not path:
            raise BackendURIError(f"tiered:// URI needs a path: {text!r}")
        shards = _int_param(params, "shards", 2)
        hot = _int_param(params, "hot", 256)
        child_kind = params.pop("child", "dir")
        child_cls = _TIERED_CHILDREN.get(child_kind)
        if child_cls is None:
            raise BackendURIError(
                f"unknown tiered child backend {child_kind!r}; "
                f"known: {sorted(_TIERED_CHILDREN)}"
            )
        if shards < 1:
            raise BackendURIError("tiered:// needs shards >= 1")
        children = [
            child_cls(os.path.join(path, f"shard-{k}"), max_entries=max_entries)
            for k in range(shards)
        ]
        backend = TieredBackend(children, hot_entries=hot, uri=text)
    else:
        raise BackendURIError(
            f"unknown backend scheme {scheme!r} in {text!r}; "
            f"known schemes: dir, sqlite, tiered, mem"
        )
    if params:
        backend.close()
        raise BackendURIError(
            f"unknown backend URI parameter(s) {sorted(params)} in {text!r}"
        )
    return backend
