"""The in-memory backend: an LRU dict of cells.

Process-local (``uri`` stays None — it cannot be shared with worker
processes), zero I/O, and exactly the semantics of the persistent
backends — which makes it both the hot tier of
:class:`~repro.storage.tiered.TieredBackend` and the cheapest backend
for tests and short-lived in-process services.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.storage.base import StoreBackend


class MemoryBackend(StoreBackend):
    """Cell dict with LRU eviction at ``max_entries``."""

    kind = "mem"

    def __init__(self, max_entries=None):
        super().__init__()
        if max_entries is not None and int(max_entries) < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = None if max_entries is None else int(max_entries)
        self._cells = OrderedDict()

    def __len__(self):
        with self._lock:
            return len(self._cells)

    def get(self, key):
        with self._lock:
            arrays = self._cells.get(key)
            if arrays is None:
                self.stats.misses += 1
                return None
            self._cells.move_to_end(key)
            self.stats.hits += 1
            # A shallow copy: callers may add/drop dict keys without
            # mutating the stored cell (arrays are shared read-only).
            return dict(arrays)

    def put(self, key, arrays):
        with self._lock:
            self._cells.pop(key, None)
            self._cells[key] = dict(arrays)
            self.stats.writes += 1
        self.evict()

    def contains(self, key):
        with self._lock:
            return key in self._cells

    def evict(self):
        if self.max_entries is None:
            return 0
        dropped = 0
        with self._lock:
            while len(self._cells) > self.max_entries:
                self._cells.popitem(last=False)
                self.stats.evictions += 1
                dropped += 1
        return dropped

    def clear(self):
        with self._lock:
            self._cells.clear()

    def _writable_probe(self):
        return True
