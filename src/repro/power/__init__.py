"""Implant-side power management (paper Section IV).

The received carrier is rectified (half-wave rectifier with four clamping
diodes, Vo <= 3 V), buffered on the storage capacitor Co, and regulated
down to the sensor's 1.8 V supply by an LDO with 300 mV dropout — hence
the paper's rule that Vo must stay above 2.1 V.  The same block hosts the
LSK load modulator (switches M1/M2 of Fig. 8).

Two abstraction levels:

* :mod:`repro.power.rectifier` builds carrier-resolved SPICE netlists of
  Fig. 8 for validation;
* :mod:`repro.power.envelope` integrates the bit-time-scale envelope
  dynamics (Co charging, load steps, LSK droop) that regenerate Fig. 11.
"""

from repro.power.rectifier import (
    RectifierParameters,
    build_rectifier_circuit,
    measure_input_resistance,
)
from repro.power.envelope import RectifierEnvelopeModel, EnvelopeTrace
from repro.power.regulator import LowDropoutRegulator
from repro.power.storage import StorageCapacitor
from repro.power.monitor import UndervoltageMonitor, PowerOnReset
from repro.power.budget import PowerBudget, SensorMode, SENSOR_LOW_POWER, \
    SENSOR_HIGH_POWER
from repro.power.thermal import (
    ImplantThermalModel,
    ThermalReport,
    field_sar,
    link_h_field,
    implant_thermal_check,
    thermal_headroom,
)

__all__ = [
    "RectifierParameters",
    "build_rectifier_circuit",
    "measure_input_resistance",
    "RectifierEnvelopeModel",
    "EnvelopeTrace",
    "LowDropoutRegulator",
    "StorageCapacitor",
    "UndervoltageMonitor",
    "PowerOnReset",
    "PowerBudget",
    "SensorMode",
    "SENSOR_LOW_POWER",
    "SENSOR_HIGH_POWER",
    "ImplantThermalModel",
    "ThermalReport",
    "field_sar",
    "link_h_field",
    "implant_thermal_check",
    "thermal_headroom",
]
