"""Thermal-dissipation checks for the implanted device.

The paper lists "a low thermal dissipation" among the key requirements
(Section I): regulatory practice limits chronic tissue heating to about
1-2 degC (and RF exposure via SAR).  This module estimates the implant's
steady-state temperature rise from its dissipated power and checks the
field-induced tissue heating of the 5 MHz link.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util import require_positive

#: Thermal conductivity of perfused soft tissue (W/(m*K)).
TISSUE_CONDUCTIVITY = 0.5
#: Blood-perfusion equivalent heat-transfer bump (effective multiplier).
PERFUSION_FACTOR = 1.6
#: Conservative chronic-implant limit (degC above core temperature).
MAX_TEMP_RISE = 1.0
#: IEEE C95.1-style localised SAR limit (W/kg, 10 g average).
SAR_LIMIT_10G = 2.0


@dataclass(frozen=True)
class ThermalReport:
    """Result of a thermal check."""

    p_dissipated: float
    temp_rise: float
    sar: float
    temp_ok: bool
    sar_ok: bool

    @property
    def ok(self):
        return self.temp_ok and self.sar_ok


class ImplantThermalModel:
    """Spherical-equivalent steady-state conduction model.

    A body of characteristic radius ``r_eq`` dissipating P into infinite
    perfused tissue rises by dT = P / (4*pi*k_eff*r_eq) — the standard
    first-cut used before FEM.  The paper's implant (38 x 2 x 0.5 mm)
    maps to r_eq ~ 4 mm (equal-surface sphere of the slab).
    """

    def __init__(self, r_equivalent=4e-3,
                 conductivity=TISSUE_CONDUCTIVITY,
                 perfusion_factor=PERFUSION_FACTOR):
        self.r_eq = require_positive(r_equivalent, "r_equivalent")
        self.k = require_positive(conductivity, "conductivity")
        self.perfusion = require_positive(perfusion_factor,
                                          "perfusion_factor")

    @classmethod
    def for_slab(cls, length, width, height, **kwargs):
        """Equivalent radius from the slab's surface area
        (A_sphere = A_slab -> r = sqrt(A/4pi))."""
        require_positive(length, "length")
        require_positive(width, "width")
        require_positive(height, "height")
        area = 2.0 * (length * width + length * height + width * height)
        return cls(r_equivalent=math.sqrt(area / (4.0 * math.pi)),
                   **kwargs)

    def temperature_rise(self, p_dissipated):
        """Steady-state surface temperature rise (degC) for dissipated
        power ``p_dissipated`` (W)."""
        if p_dissipated < 0:
            raise ValueError("p_dissipated must be >= 0")
        k_eff = self.k * self.perfusion
        return p_dissipated / (4.0 * math.pi * k_eff * self.r_eq)

    def max_dissipation(self, temp_limit=MAX_TEMP_RISE):
        """Largest power dissipation within the temperature limit."""
        require_positive(temp_limit, "temp_limit")
        k_eff = self.k * self.perfusion
        return temp_limit * 4.0 * math.pi * k_eff * self.r_eq


def thermal_headroom(ambient_temperature, limit=MAX_TEMP_RISE,
                     core_temperature=37.0):
    """Allowed implant temperature rise (degC) at an ambient tissue
    temperature: the chronic limit is referenced to core temperature,
    so tissue already above 37 degC (fever, exertion) eats into the
    budget degree for degree; below-core tissue keeps the full limit.
    Can go negative — at ``core + limit`` and beyond, *any* dissipation
    is over budget (the sweep axis in
    :meth:`repro.engine.ScenarioBatch.physical_report`)."""
    require_positive(limit, "limit")
    return limit - max(0.0, float(ambient_temperature)
                       - core_temperature)


def field_sar(tissue, h_field_amplitude, freq, radius=10e-3,
              density=1050.0):
    """Eddy-current SAR in tissue exposed to the link's H field.

    For a conductive region of ``radius`` in a uniform axial H field,
    the induced E at the rim is omega*mu0*H*r/2 and
    SAR = sigma*E_rms^2/rho — the standard quasi-static bound.
    """
    require_positive(freq, "freq")
    if h_field_amplitude < 0:
        raise ValueError("h_field_amplitude must be >= 0")
    omega = 2.0 * math.pi * freq
    mu0 = 4e-7 * math.pi
    e_peak = omega * mu0 * h_field_amplitude * radius / 2.0
    e_rms_sq = e_peak * e_peak / 2.0
    return tissue.conductivity * e_rms_sq / density


def link_h_field(i_tx_amplitude, coil_radius, distance):
    """On-axis H-field amplitude of the transmit coil (single-turn
    equivalent loop): H = I*r^2 / (2*(r^2+z^2)^1.5)."""
    require_positive(coil_radius, "coil_radius")
    if distance < 0:
        raise ValueError("distance must be >= 0")
    r2 = coil_radius * coil_radius
    return (i_tx_amplitude * r2
            / (2.0 * (r2 + distance * distance) ** 1.5))


def implant_thermal_check(p_received, p_delivered_to_load,
                          i_tx_amplitude, coil_radius, coil_turns,
                          distance, tissue, model=None):
    """Full thermal audit of an operating point.

    The implant dissipates what it receives minus what reaches the load
    usefully *plus* the load power itself (all electrical power ends as
    heat in the implant); the field check covers the surrounding tissue.
    """
    model = model or ImplantThermalModel.for_slab(38e-3, 2e-3, 0.544e-3)
    if p_received < p_delivered_to_load:
        raise ValueError("cannot deliver more than is received")
    p_heat = p_received  # everything ultimately dissipates locally
    rise = model.temperature_rise(p_heat)
    h = link_h_field(i_tx_amplitude * coil_turns, coil_radius, distance)
    sar = field_sar(tissue, h, 5e6)
    return ThermalReport(
        p_dissipated=p_heat,
        temp_rise=rise,
        sar=sar,
        temp_ok=rise <= MAX_TEMP_RISE,
        sar_ok=sar <= SAR_LIMIT_10G,
    )
