"""The voltage rectifier and load-modulation unit of the paper's Fig. 8.

Carrier-resolved netlists for the `repro.spice` engine.  The cell is a
clamp-plus-rectifier (Greinacher) half-wave stage: the series input
capacitor and a clamping diode shift the carrier up so the rectifying
diode charges Co toward nearly *twice* the input amplitude.  That is the
only single-stage topology consistent with the paper's numbers — a
~150 ohm average input impedance at 5 mW implies an input amplitude of
~1.2-1.7 V, yet Co charges to 2.75 V — and matches Fig. 8's "half-wave
rectifier with four clamping diodes".

The LSK load modulator is included: switch M1 short-circuits the input
while transmitting a logic 0, and series switch M2 opens at the same time
so Co does not back-discharge ("to avoid the discharge of Co due to the
leakage current of the clamping diodes, switch M2 is kept open when a low
logic value is transmitted").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.spice import Circuit, sine, transient
from repro.util import require_positive


@dataclass(frozen=True)
class RectifierParameters:
    """Component values of the power-management front-end.

    Defaults reproduce the paper's operating point (Fig. 11): Co charging
    to 2.75 V around 270 us from a 5 mW carrier, output clamped near 3 V.
    """

    c_out: float = 250e-9          # Co: storage capacitor
    c_couple: float = 2e-9         # series input capacitor (doubler/clamp)
    n_clamp_diodes: int = 4        # overvoltage clamp chain (Vo <= 3 V)
    diode_is: float = 1e-9         # rectifier diodes: low-drop (MOS-diode)
    # Output clamp diodes: sized so the 4-diode chain conducts ~1 mA at
    # 3 V (0.75 V per diode) — negligible leakage at 2.5 V.
    clamp_is: float = 2.5e-16
    switch_r_on: float = 2.0       # M1 / M2 on resistance
    switch_r_off: float = 1e8
    clamp_voltage: float = 3.0     # nominal clamp level (for documentation)

    def __post_init__(self):
        require_positive(self.c_out, "c_out")
        require_positive(self.c_couple, "c_couple")
        require_positive(self.diode_is, "diode_is")
        if self.n_clamp_diodes < 1:
            raise ValueError("need at least one clamping diode")


def _add_rectifier_core(ckt, params, node_in):
    """Clamp diode + rectifier diode + overvoltage chain: ``node_in`` is
    the AC side (after the coupling capacitor); the rectified-but-
    unbuffered output node is ``vr``."""
    # Clamp diode: lifts the negative half-cycles (ground -> node_in).
    ckt.add_diode("DCLAMP", "0", node_in, i_s=params.diode_is)
    # Rectifying diode into the (pre-M2) output node.
    ckt.add_diode("DR", node_in, "vr", i_s=params.diode_is)
    # Overvoltage clamp chain on vr: opening M2 therefore isolates Co
    # from the chain's leakage — the paper's Section IV-A measure.
    previous = "vr"
    for k in range(params.n_clamp_diodes):
        nxt = "0" if k == params.n_clamp_diodes - 1 else f"clamp{k}"
        ckt.add_diode(f"DCL{k}", previous, nxt, i_s=params.clamp_is)
        previous = nxt


def build_rectifier_circuit(params=None, v_in_amplitude=1.75, freq=5e6,
                            i_load=350e-6, uplink_source=None,
                            source_resistance=150.0):
    """Netlist of Fig. 8 driven by a carrier Thevenin source.

    ``uplink_source`` (optional, 0/1.8 V source function) drives the LSK
    modulation: logic LOW closes M1 (shorting the input) and opens M2
    (isolating Co).

    Nodes: ``vi`` rectifier input, ``vx`` clamped node, ``vr`` rectified
    node, ``vo`` output on Co.  Run with :func:`repro.spice.transient`.
    """
    params = params or RectifierParameters()
    ckt = Circuit("rectifier_fig8")
    # Receiving tank + matching as a Thevenin source: open-circuit
    # amplitude is twice the matched input amplitude.
    ckt.add_vsource("VSRC", "src", "0", sine(v_in_amplitude * 2.0, freq))
    ckt.add_resistor("RS", "src", "vi", source_resistance)
    ckt.add_capacitor("CC", "vi", "vx", params.c_couple)
    _add_rectifier_core(ckt, params, "vx")

    if uplink_source is not None:
        ckt.add_vsource("VUP", "vup", "0", uplink_source)
        # M1 control = 1.8 - Vup: closes (shorts vi) while Vup is LOW.
        ckt.add_vsource("VREF18", "vref18", "0", 1.8)
        ckt.add_vcvs("EM1C", "m1c", "0", "vref18", "vup", 1.0)
        ckt.add_switch("M1", "vi", "0", "m1c", "0",
                       v_threshold=0.9, r_on=params.switch_r_on,
                       r_off=params.switch_r_off)
        # M2 conducts only while Vup is HIGH.
        ckt.add_switch("M2", "vr", "vo", "vup", "0",
                       v_threshold=0.9, r_on=params.switch_r_on,
                       r_off=params.switch_r_off)
    else:
        ckt.add_resistor("M2on", "vr", "vo", params.switch_r_on)

    ckt.add_capacitor("Co", "vo", "0", params.c_out, ic=0.0)
    if i_load > 0:
        ckt.add_isource("ILOAD", "vo", "0", i_load)
    return ckt


def _drive_rectifier_direct(params, v_amp, freq, v_out_hold, cycles,
                            points_per_cycle):
    """Transient of the rectifier core driven by an ideal carrier with the
    output pinned at ``v_out_hold``; returns (v_wave, i_wave, p_in)."""
    ckt = Circuit("rect_zin")
    ckt.add_vsource("VIN", "vi", "0", sine(v_amp, freq))
    ckt.add_capacitor("CC", "vi", "vx", params.c_couple)
    ckt.add_diode("DCLAMP", "0", "vx", i_s=params.diode_is)
    ckt.add_diode("DR", "vx", "vr", i_s=params.diode_is)
    ckt.add_resistor("RM2", "vr", "vo", params.switch_r_on)
    # Stiff output: a huge pre-charged capacitor emulates steady state.
    ckt.add_capacitor("Co", "vo", "0", 100e-6, ic=v_out_hold)
    period = 1.0 / freq
    res = transient(ckt, t_stop=cycles * period,
                    dt=period / points_per_cycle, method="trap",
                    use_ic=True)
    t_lo = (cycles // 2) * period
    t_hi = cycles * period
    v_i = res.voltage("vi").clip_time(t_lo, t_hi)
    i_src = res.branch_current("VIN").clip_time(t_lo, t_hi)
    # Branch current flows through the source from + to -, so the power
    # the source *delivers* is -mean(v * i_branch).
    p_in = -(v_i * i_src).mean()
    return v_i, i_src, p_in


def measure_input_resistance(params=None, power_level=5e-3, freq=5e6,
                             v_out_hold=2.5, cycles=40,
                             points_per_cycle=60):
    """Estimate the rectifier's *average* input resistance at a power level.

    The paper (Section IV-C): "Due to the non-linearity of the rectifier,
    it is not possible to define a linear input impedance ... simulations
    have been performed to determine an average value ... about 150 ohm."

    Procedure: bisect the drive amplitude until the rectifier absorbs
    ``power_level`` with its output held at ``v_out_hold``, then report

    * ``r_power``  = V_rms^2 / P_in  (power-equivalent resistance)
    * ``z_rms``    = V_rms / I_rms   (the 'average impedance' a designer
      matches to; pulsed conduction makes it smaller than ``r_power``)

    Returns a dict with both plus the solved drive amplitude.
    """
    params = params or RectifierParameters()
    require_positive(power_level, "power_level")
    lo, hi = v_out_hold / 2.0 * 0.2, v_out_hold * 2.0
    v_i = i_src = None
    for _ in range(30):
        mid = 0.5 * (lo + hi)
        v_i, i_src, p_in = _drive_rectifier_direct(
            params, mid, freq, v_out_hold, cycles, points_per_cycle)
        if p_in < power_level:
            lo = mid
        else:
            hi = mid
        if abs(p_in - power_level) < 0.01 * power_level:
            break
    v_rms = v_i.rms()
    i_rms = i_src.rms()
    return {
        "r_power": v_rms**2 / p_in,
        "z_rms": v_rms / i_rms,
        "v_amplitude": mid,
        "p_in": p_in,
    }
