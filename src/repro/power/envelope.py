"""Envelope-level model of the rectifier + storage capacitor.

Carrier-resolved simulation of the full Fig. 11 transient (600 us at
5 MHz) costs millions of Newton solves; the quantities the figure reports
(Co charging to 2.75 V, Vo >= 2.1 V during both communications) live on
the bit-time scale, so this model integrates the *envelope*:

    Co * dVo/dt = I_rect(P_in(t), Vo) - I_load(t)

with the rectifier represented by its power-conversion efficiency and the
clamp chain by a hard ceiling.  The carrier-resolved netlists in
:mod:`repro.power.rectifier` validate this abstraction in the tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.signals import Waveform
from repro.util import require_positive


def rectified_current_array(p_in, v_out, efficiency, v_min_operate):
    """Elementwise rectified current (charge balance) for scalar or
    array parameters — the single source of the batched formula used by
    both :class:`RectifierEnvelopeModel` and ``ScenarioBatch``."""
    v_eff = np.maximum(v_out, v_min_operate)
    return np.where(np.asarray(p_in) > 0.0,
                    efficiency * p_in / v_eff, 0.0)


def clamp_current_array(v_out, clamp_i0, clamp_voltage, clamp_slope):
    """Elementwise clamp-chain leakage for scalar or array parameters
    (exponent capped so pathological rails cannot overflow)."""
    exponent = np.minimum((v_out - clamp_voltage) / clamp_slope, 60.0)
    return np.where(np.asarray(v_out) > 0.0,
                    clamp_i0 * np.exp(exponent), 0.0)


@dataclass
class EnvelopeTrace:
    """Output of an envelope run: Vo(t), input power, and load current."""

    v_out: Waveform
    p_in: Waveform
    i_load: Waveform

    def minimum_after(self, t):
        """Minimum output voltage from ``t`` to the end (the paper's
        'never goes below 2.1 V' check)."""
        return self.v_out.clip_time(t, self.v_out.t_stop).min()


class RectifierEnvelopeModel:
    """Bit-time-scale model of rectifier + Co + clamp.

    Parameters
    ----------
    c_out : storage capacitance Co (250 nF reproduces the paper's 2.75 V
        at ~270 us from 5 mW, Fig. 11).
    efficiency : carrier-to-DC conversion efficiency of the clamp-doubler
        rectifier (diode drops + conduction-angle losses).
    clamp_voltage : voltage at which the 4-diode clamp chain conducts
        ``clamp_i0`` (the paper's Vo <= 3 V); the exponential
        ``clamp_slope`` is 4 diode thermal slopes.
    v_min_operate : charge-balance floor — at start-up the inrush is
        limited by the source impedance, not by Vo.

    Defaults are calibrated against the carrier-resolved netlist of
    :mod:`repro.power.rectifier` (see tests/test_power_consistency.py).
    """

    def __init__(self, c_out=250e-9, efficiency=0.9, clamp_voltage=3.0,
                 v_min_operate=0.8, clamp_i0=1e-3, clamp_slope=0.1034):
        self.c_out = require_positive(c_out, "c_out")
        self.efficiency = require_positive(efficiency, "efficiency")
        if not 0 < efficiency <= 1:
            raise ValueError(f"efficiency must be in (0,1], got {efficiency}")
        self.clamp_voltage = require_positive(clamp_voltage, "clamp_voltage")
        self.v_min_operate = float(v_min_operate)
        self.clamp_i0 = require_positive(clamp_i0, "clamp_i0")
        self.clamp_slope = require_positive(clamp_slope, "clamp_slope")

    def rectified_current(self, p_in, v_out):
        """DC current sourced into Co at input power ``p_in`` and output
        voltage ``v_out`` (charge balance: I = eta*P / max(Vo, floor)).

        Accepts scalars or (broadcastable) numpy arrays — the math is
        elementwise, which is what lets ScenarioBatch vectorize it.
        """
        if isinstance(p_in, np.ndarray) or isinstance(v_out, np.ndarray):
            return rectified_current_array(p_in, v_out, self.efficiency,
                                           self.v_min_operate)
        if p_in <= 0.0:
            return 0.0
        v_eff = max(v_out, self.v_min_operate)
        return self.efficiency * p_in / v_eff

    def clamp_current(self, v_out):
        """Leakage into the 4-diode overvoltage clamp chain (scalar or
        numpy array).  Both paths cap the exponent at 60 (~9 V on the
        default chain) so pathological rails saturate instead of
        overflowing; every physical rail sits far below the cap."""
        if isinstance(v_out, np.ndarray):
            return clamp_current_array(v_out, self.clamp_i0,
                                       self.clamp_voltage,
                                       self.clamp_slope)
        if v_out <= 0.0:
            return 0.0
        return self.clamp_i0 * math.exp(min(
            (v_out - self.clamp_voltage) / self.clamp_slope, 60.0))

    def simulate(self, p_in_func, i_load_func, t_stop, dt=1e-6, v0=0.0,
                 shorted_func=None):
        """Integrate the envelope ODE.

        ``p_in_func(t)`` — available carrier power at the rectifier input
        (set by the link and the ASK bit pattern).
        ``i_load_func(t)`` — DC load current (sensor mode dependent).
        ``shorted_func(t)`` — optional LSK modulation: True while the
        input is short-circuited (no power in; M2 open so Co only sees
        the load).

        The integration runs on the shared
        :class:`~repro.engine.core.SimulationEngine` (imported lazily —
        the engine's batch layer depends back on this module's model);
        this method is a thin adapter keeping the historical API.
        """
        from repro.engine.core import SimulationEngine
        from repro.engine.components import RectifierRail, SignalSource

        engine = SimulationEngine.uniform(t_stop, dt)
        engine.add(SignalSource("p_carrier", p_in_func, trace=False))
        engine.add(SignalSource("i_load", i_load_func))
        if shorted_func is not None:
            engine.add(SignalSource("shorted", shorted_func, cast=bool,
                                    trace=False))
        engine.add(RectifierRail(self, v0=v0))
        result = engine.run()
        return EnvelopeTrace(
            v_out=result.waveform("v_rect"),
            p_in=result.waveform("p_in"),
            i_load=result.waveform("i_load"),
        )

    def charge_time(self, p_in, i_load, v_target, v0=0.0):
        """Closed-form-ish time to charge Co from ``v0`` to ``v_target``
        under constant input power and load (numerically integrated;
        returns None if the target is unreachable)."""
        require_positive(v_target, "v_target")
        if v_target > self.clamp_voltage:
            return None
        v, t, dt = v0, 0.0, 1e-6
        limit = 1.0  # a full second means effectively never
        while v < v_target:
            i_rect = self.rectified_current(p_in, v)
            dv = (i_rect - i_load - self.clamp_current(v)) * dt / self.c_out
            if dv <= 0:
                return None
            v += dv
            t += dt
            if t > limit:
                return None
        return t
