"""Transistor-level netlist of the paper's Fig. 9 ASK demodulator.

The switched peak detector: while phi1 is high, PMOS pass device M10
charges the hold capacitor C2 to the carrier peak (diodes prevent
discharge) and the held level is read by the inverter pair I3/I4; while
phi2 is high, C1 forces M10's gate-source to zero (switch open) and C2
is discharged, arming the next decision.  This netlist validates the
behavioural :class:`repro.comms.AskDemodulator` at circuit level.

Simplifications versus the 0.18 um schematic: the two-phase clock is
supplied as ideal sources; the bulk-biasing sub-circuit (Ma/Mb) is
represented by M10's symmetric level-1 model, which cannot latch up by
construction; the inverter pair is a two-MOSFET CMOS inverter plus an
ideal buffer.
"""

from __future__ import annotations

import numpy as np

from repro.comms.clock import TwoPhaseClock
from repro.signals import slice_levels
from repro.spice import Circuit, transient
from repro.spice.sources import SourceFunction, ask_carrier


def _clock_sources(clock, v_high=1.8):
    """(phi1, phi2) source functions from a TwoPhaseClock."""
    phi1 = SourceFunction(
        lambda t: v_high if clock.phi1(t) else 0.0, label="phi1")
    phi2 = SourceFunction(
        lambda t: v_high if clock.phi2(t) else 0.0, label="phi2")
    return phi1, phi2


def build_demodulator_circuit(bits, carrier_freq=5e6, bit_rate=100e3,
                              amplitude=1.5, depth=0.42, vdd=1.8):
    """Fig. 9 as a netlist, driven by an ASK-modulated carrier.

    Returns (circuit, clock).  Nodes: ``vi`` carrier input, ``hold`` the
    C2 peak-hold node, ``vdem`` the demodulated output.
    """
    clock = TwoPhaseClock(bit_rate, non_overlap=0.05)
    ckt = Circuit("ask_demodulator_fig9")
    ckt.add_vsource("VDD", "vdd", "0", vdd)
    ckt.add_vsource("VIN", "vi", "0",
                    ask_carrier(amplitude, carrier_freq, bits, bit_rate,
                                depth))
    phi1, phi2 = _clock_sources(clock, vdd)
    ckt.add_vsource("VPHI1", "phi1", "0", phi1)
    ckt.add_vsource("VPHI2", "phi2", "0", phi2)

    # Track switch M10: a PMOS pass device; its gate is pulled low
    # (track) during phi1 via switch SG1, and shorted to source (open)
    # during phi2 — the C1 gate-capacitor trick of Fig. 10b.
    ckt.add_capacitor("C1", "gate", "vi", 2e-12)
    ckt.add_switch("SG1", "gate", "0", "phi1", "0",
                   v_threshold=0.9, r_on=100.0, r_off=1e9)
    ckt.add_switch("SG2", "gate", "vi", "phi2", "0",
                   v_threshold=0.9, r_on=100.0, r_off=1e9)
    ckt.add_mosfet("M10", "vi", "gate", "peak", polarity="p",
                   vto=0.45, kp=120e-6, w=40e-6, l=0.35e-6, lam=0.01)

    # Series diode + hold capacitor C2 (D6-D8 collapse to one ideal
    # junction: they only ever block the same discharge path).
    ckt.add_diode("D6", "peak", "hold", i_s=5e-12)
    ckt.add_capacitor("C2", "hold", "0", 3e-12)
    ckt.add_resistor("RPK", "peak", "0", 1e8)  # keeps the node defined
    # phi2 discharge of the hold node.
    ckt.add_switch("SD", "hold", "0", "phi2", "0",
                   v_threshold=0.9, r_on=500.0, r_off=1e9)

    # Inverter pair I3/I4: two CMOS inverters slice and restore the
    # held level to a clean logic output on vdem.
    def add_inverter(tag, node_in, node_out):
        ckt.add_mosfet(f"M{tag}P", node_out, node_in, "vdd",
                       polarity="p", vto=0.45, kp=120e-6, w=8e-6,
                       l=0.35e-6)
        ckt.add_mosfet(f"M{tag}N", node_out, node_in, "0",
                       polarity="n", vto=0.45, kp=240e-6, w=4e-6,
                       l=0.35e-6)
        ckt.add_capacitor(f"C{tag}", node_out, "0", 50e-15)

    add_inverter("I3", "hold", "inv")
    add_inverter("I4", "inv", "vdem")
    ckt.add_resistor("RLOAD", "vdem", "0", 1e7)
    return ckt, clock


def demodulate_with_circuit(bits, n_cycles_per_point=24,
                            carrier_freq=5e6, bit_rate=100e3, **kwargs):
    """Run the Fig. 9 netlist over ``bits`` and slice the output.

    Heavy (carrier-resolved), so intended for short validation patterns
    (a few bits).  Returns (recovered_bits, result).
    """
    bits = [int(b) for b in bits]
    ckt, clock = build_demodulator_circuit(
        bits, carrier_freq=carrier_freq, bit_rate=bit_rate, **kwargs)
    t_stop = (len(bits) + 0.5) / bit_rate
    dt = 1.0 / (carrier_freq * n_cycles_per_point)
    res = transient(ckt, t_stop=t_stop, dt=dt, method="trap",
                    use_ic=True, store_every=2)
    v_hold = res.voltage("hold")
    # Decision instants: late in each phi1 track window (the paper reads
    # at phi1 edges; the held peak is valid just before phi2).  The
    # slicing threshold is the midpoint of the *held decision values* —
    # the phi2 discharge dips must not bias it.
    t_bit = 1.0 / bit_rate
    sample_times = [(k + 0.42) * t_bit for k in range(len(bits))]
    samples = [float(v_hold.value_at(ts)) for ts in sample_times]
    threshold = 0.5 * (min(samples) + max(samples))
    recovered = slice_levels(v_hold, threshold, sample_times)
    return recovered, res
