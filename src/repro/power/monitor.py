"""Supply supervision: undervoltage lockout and power-on reset.

The paper's operational rule — the rectifier output "never goes below
2.1 V" during communication — is enforced/observed by these supervisors
in the integrated system model.
"""

from __future__ import annotations

from repro.signals import crossing_times
from repro.util import require_positive


class UndervoltageMonitor:
    """Hysteretic undervoltage supervisor on the rectifier output.

    Asserts (rail bad) when the voltage falls below ``v_trip`` and
    releases only above ``v_release`` (hysteresis avoids chatter on
    ripple).
    """

    def __init__(self, v_trip=2.1, hysteresis=0.05):
        self.v_trip = require_positive(v_trip, "v_trip")
        self.hysteresis = float(hysteresis)
        if self.hysteresis < 0:
            raise ValueError("hysteresis must be >= 0")
        self._tripped = True  # starts tripped until the rail proves good

    @property
    def v_release(self):
        return self.v_trip + self.hysteresis

    def update(self, voltage):
        """Feed one sample; returns True while the rail is good."""
        if self._tripped:
            if voltage >= self.v_release:
                self._tripped = False
        else:
            if voltage < self.v_trip:
                self._tripped = True
        return not self._tripped

    def scan(self, waveform):
        """Run over a waveform; returns (ok_fraction, trip_times).

        ``ok_fraction`` is the fraction of samples with the rail good;
        ``trip_times`` are the falling crossings of ``v_trip``.
        """
        good = sum(1 for v in waveform.v if self.update(float(v)))
        trips = crossing_times(waveform, self.v_trip, "falling")
        return good / len(waveform), trips


class PowerOnReset:
    """Release reset after the rail stays above threshold for ``t_hold``."""

    def __init__(self, v_threshold=1.6, t_hold=50e-6):
        self.v_threshold = require_positive(v_threshold, "v_threshold")
        self.t_hold = require_positive(t_hold, "t_hold")

    def release_time(self, waveform):
        """First time the rail has been continuously good for ``t_hold``.

        Returns None if reset never releases within the waveform.
        """
        above_since = None
        for t, v in zip(waveform.t, waveform.v):
            if v >= self.v_threshold:
                if above_since is None:
                    above_since = t
                elif t - above_since >= self.t_hold:
                    return above_since + self.t_hold
            else:
                above_since = None
        return None
