"""Power budgeting for the implanted sensor.

The paper's simulation assumptions (Section IV-C): low-power mode draws
about 350 uA (communication), high-power mode about 1.3 mA (measurement),
both at 1.8 V — deliberately pessimistic versus the measured electronics
(45 uA potentiostat + 240 uA ADC, Section II-B).  The budget object
checks a delivered-power level against a mode, through the LDO.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.regulator import LowDropoutRegulator
from repro.util import require_positive


@dataclass(frozen=True)
class SensorMode:
    """An operating mode of the implanted sensor."""

    name: str
    i_supply: float   # current draw from the 1.8 V rail
    v_supply: float = 1.8

    @property
    def power(self):
        return self.i_supply * self.v_supply


#: The paper's worst-case assumptions (Section IV-C).
SENSOR_LOW_POWER = SensorMode("low_power_comms", 350e-6)
SENSOR_HIGH_POWER = SensorMode("high_power_measurement", 1.3e-3)


class PowerBudget:
    """Delivered-power vs consumption bookkeeping through the LDO."""

    def __init__(self, regulator=None, rectifier_efficiency=0.9):
        self.regulator = regulator or LowDropoutRegulator()
        require_positive(rectifier_efficiency, "rectifier_efficiency")
        self.rectifier_efficiency = rectifier_efficiency

    def required_input_power(self, mode, v_rect=2.5):
        """Carrier power needed at the rectifier input to sustain
        ``mode`` with the rectifier output held at ``v_rect``."""
        i_in_ldo = self.regulator.input_current(mode.i_supply)
        p_dc = v_rect * i_in_ldo
        return p_dc / self.rectifier_efficiency

    def margin(self, p_available, mode, v_rect=2.5):
        """(absolute margin W, ratio) of available over required power."""
        p_req = self.required_input_power(mode, v_rect)
        return p_available - p_req, p_available / p_req

    def sustainable(self, p_available, mode, v_rect=2.5):
        """True when ``p_available`` sustains ``mode`` indefinitely."""
        return self.margin(p_available, mode, v_rect)[0] >= 0.0

    def supported_modes(self, p_available, modes=None, v_rect=2.5):
        """Subset of ``modes`` sustainable at ``p_available``."""
        modes = modes if modes is not None else [SENSOR_LOW_POWER,
                                                 SENSOR_HIGH_POWER]
        return [m for m in modes if self.sustainable(p_available, m, v_rect)]
