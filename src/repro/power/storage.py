"""Storage-capacitor (Co) sizing and droop analysis.

During LSK uplink the rectifier input is short-circuited for whole bit
periods and Co alone carries the sensor; during ASK downlink the incoming
power drops to the logic-0 level.  This module answers the sizing
question those events pose.
"""

from __future__ import annotations

import math

from repro.util import require_positive


class StorageCapacitor:
    """The implant's reservoir capacitor."""

    def __init__(self, capacitance, v_rating=5.0, esr=0.1):
        self.capacitance = require_positive(capacitance, "capacitance")
        self.v_rating = require_positive(v_rating, "v_rating")
        self.esr = float(esr)

    def droop(self, i_load, duration):
        """Voltage lost supplying ``i_load`` for ``duration`` with no
        recharge (plus the ESR step)."""
        require_positive(duration, "duration")
        if i_load < 0:
            raise ValueError("i_load must be >= 0")
        return i_load * duration / self.capacitance + i_load * self.esr

    def holdup_time(self, i_load, v_start, v_min):
        """How long the cap alone can hold the rail above ``v_min``."""
        require_positive(i_load, "i_load")
        if v_start <= v_min:
            return 0.0
        v_avail = v_start - v_min - i_load * self.esr
        if v_avail <= 0:
            return 0.0
        return self.capacitance * v_avail / i_load

    def energy(self, voltage):
        """Stored energy at ``voltage``."""
        if voltage < 0:
            raise ValueError("voltage must be >= 0")
        return 0.5 * self.capacitance * voltage * voltage

    @classmethod
    def size_for_holdup(cls, i_load, duration, v_start, v_min, margin=2.0,
                        **kwargs):
        """Smallest (margined) capacitor keeping the rail above ``v_min``
        while unpowered for ``duration`` at ``i_load``.

        >>> c = StorageCapacitor.size_for_holdup(350e-6, 15e-6, 2.75, 2.1)
        >>> c.capacitance < 100e-9
        True
        """
        require_positive(i_load, "i_load")
        require_positive(duration, "duration")
        if v_start <= v_min:
            raise ValueError("v_start must exceed v_min")
        c_min = i_load * duration / (v_start - v_min)
        return cls(c_min * margin, **kwargs)

    def ripple_at_carrier(self, i_load, freq):
        """Peak-to-peak carrier-frequency ripple for a half-wave
        rectifier feeding ``i_load`` (discharge for one carrier period)."""
        require_positive(freq, "freq")
        return i_load / (self.capacitance * freq)
