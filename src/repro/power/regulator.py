"""Low-dropout regulator model (the implant's 1.8 V supply).

The paper assumes a 300 mV dropout: "By considering the dropout voltage
of the regulator equal to 300 mV, the output voltage Vo of the rectifier
should always be higher than 2.1 V to assure the correct functioning of
the sensor at 1.8 V."
"""

from __future__ import annotations

from repro.util import require_positive


class LowDropoutRegulator:
    """Behavioural LDO: ideal regulation above dropout, tracking below.

    ``line_regulation`` (V/V) and ``load_regulation`` (V/A) add the small
    real-world dependencies; both default to typical 0.18 um values.
    """

    def __init__(self, v_out_nominal=1.8, dropout=0.3, i_quiescent=2e-6,
                 line_regulation=1e-3, load_regulation=0.5,
                 i_load_max=5e-3):
        self.v_out_nominal = require_positive(v_out_nominal, "v_out_nominal")
        self.dropout = require_positive(dropout, "dropout")
        self.i_quiescent = float(i_quiescent)
        self.line_regulation = float(line_regulation)
        self.load_regulation = float(load_regulation)
        self.i_load_max = require_positive(i_load_max, "i_load_max")

    @property
    def v_in_min(self):
        """Minimum input for regulation: v_out + dropout (the 2.1 V rule)."""
        return self.v_out_nominal + self.dropout

    def in_regulation(self, v_in):
        """True when the input is high enough for full regulation."""
        return v_in >= self.v_in_min

    def output_voltage(self, v_in, i_load=0.0):
        """Output for a given input voltage and load current."""
        if i_load < 0:
            raise ValueError(f"i_load must be >= 0, got {i_load}")
        if i_load > self.i_load_max:
            raise ValueError(
                f"load {i_load:.3g} A exceeds the LDO limit "
                f"{self.i_load_max:.3g} A")
        if v_in <= 0:
            return 0.0
        if self.in_regulation(v_in):
            v = (self.v_out_nominal
                 + self.line_regulation * (v_in - self.v_in_min)
                 - self.load_regulation * i_load)
            return max(v, 0.0)
        # Dropout region: the pass device is fully on.
        return max(v_in - self.dropout, 0.0)

    def input_current(self, i_load):
        """Series topology: input current = load + quiescent."""
        if i_load < 0:
            raise ValueError(f"i_load must be >= 0, got {i_load}")
        return i_load + self.i_quiescent

    def power_efficiency(self, v_in, i_load):
        """P_out / P_in at the operating point."""
        if v_in <= 0 or i_load <= 0:
            return 0.0
        v_out = self.output_voltage(v_in, i_load)
        return (v_out * i_load) / (v_in * self.input_current(i_load))

    def regulate_waveform(self, v_in_waveform, i_load=0.0):
        """Apply the LDO transfer to a rectifier-output waveform."""
        from repro.signals import Waveform

        values = [self.output_voltage(v, i_load) for v in v_in_waveform.v]
        return Waveform(v_in_waveform.t, values)
