"""Percentile/rate summaries of metrics-event sessions.

Two layers:

* :func:`percentile` / :func:`distribution` / :func:`latency_summary`
  — tiny stdlib-only statistics helpers shared by the service
  ``/stats`` endpoint, the load generator, and the session summarizer.
  An empty window always yields the explicit ``{"count": 0}`` document
  (never a silent ``None``), so downstream consumers — dashboards, the
  CI gate — can distinguish "no samples" from "missing field".
* :func:`summarize_events` — turns one session's event list (the
  recorder window, or a JSONL file loaded by
  :func:`~repro.obs.recorder.read_jsonl`) into the comparable-across-
  runs summary ``benchmarks/metrics_report.py`` prints and the CI
  metrics-gate asserts on.
"""

from __future__ import annotations


def percentile(values, q):
    """The ``q``-th percentile (0..100) of ``values`` with linear
    interpolation — tiny stdlib-only twin of ``np.percentile``
    (values need not be sorted).  Returns None for an empty sequence;
    use :func:`distribution` where an explicit empty document is
    needed."""
    if not values:
        return None
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (len(ordered) - 1) * (q / 100.0)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


def distribution(values, suffix=""):
    """Count/mean/percentile document for a sample window.

    Empty windows return exactly ``{"count": 0}`` — the explicit
    "nothing measured yet" document.  ``suffix`` names the unit on the
    statistic keys (``"_s"`` for seconds)."""
    values = list(values)
    if not values:
        return {"count": 0}
    return {
        "count": len(values),
        f"mean{suffix}": sum(values) / len(values),
        f"p50{suffix}": percentile(values, 50),
        f"p90{suffix}": percentile(values, 90),
        f"p99{suffix}": percentile(values, 99),
        f"max{suffix}": max(values),
    }


def latency_summary(values):
    """:func:`distribution` in seconds — the service/load-generator
    latency document."""
    return distribution(values, suffix="_s")


def _pluck(events, kind):
    return [doc for doc in events if doc["event"] == kind]


def _total(docs, field):
    return sum(doc[field] for doc in docs)


def warm_cache_hit_rate(events):
    """Cache-hit rate of the *last* orchestrated sweep in the session
    (the "warm rerun" the CI gate checks), or None without sweeps."""
    sweeps = _pluck(events, "sweep")
    if not sweeps:
        return None
    return sweeps[-1]["cache_hit_rate"]


def summarize_events(events):
    """One session (or several appended sessions) of events as a
    percentile/rate summary document.  Input events are assumed
    schema-valid (the recorder validates on emit; ``read_jsonl``
    validates on load)."""
    events = list(events)
    by_type = {}
    for doc in events:
        by_type[doc["event"]] = by_type.get(doc["event"], 0) + 1
    sweeps = _pluck(events, "sweep")
    chunks = _pluck(events, "chunk")
    solves = _pluck(events, "solve")
    batches = _pluck(events, "batch")
    jobs = _pluck(events, "job")
    deltas = _pluck(events, "study_diff")
    queue = _pluck(events, "queue")
    cells = _total(sweeps, "n_scenarios")
    cached = _total(sweeps, "n_cached")
    summary = {
        "events": len(events),
        "sessions": len({doc["session"] for doc in events}),
        "by_type": by_type,
        "sweeps": {
            "runs": len(sweeps),
            "cells": cells,
            "cached": cached,
            "computed": _total(sweeps, "n_computed"),
            "cache_hit_rate": cached / cells if cells else None,
            "warm_cache_hit_rate": warm_cache_hit_rate(events),
            "elapsed": latency_summary([doc["elapsed_s"] for doc in sweeps]),
        },
        "chunks": {
            "count": len(chunks),
            "cells": _total(chunks, "cells"),
            "elapsed": latency_summary([doc["elapsed_s"] for doc in chunks]),
        },
        "solver": {
            "chunks": len(solves),
            "cells": _total(solves, "cells"),
            "accepted_steps": _total(solves, "accepted_steps"),
            "newton_iters": _total(solves, "newton_iters"),
            "newton_rejects": _total(solves, "newton_rejects"),
            "lte_rejects": _total(solves, "lte_rejects"),
            # Schema-v2 linear-solver counters; .get keeps pre-v2
            # session files summarizable (they simply report 0).
            "factorizations": sum(
                doc.get("factorizations", 0) for doc in solves),
            "pattern_reuses": sum(
                doc.get("pattern_reuses", 0) for doc in solves),
        },
        "batches": {
            "count": len(batches),
            "jobs": _total(batches, "jobs"),
            "cells": _total(batches, "cells"),
            "deduped": _total(batches, "deduped"),
            "cached": _total(batches, "cached"),
            "computed": _total(batches, "computed"),
            "elapsed": latency_summary([doc["elapsed_s"] for doc in batches]),
        },
        "jobs": {
            "count": len(jobs),
            "by_state": {},
            "latency": latency_summary([doc["latency_s"] for doc in jobs]),
        },
        "deltas": {
            "runs": len(deltas),
            "cells": _total(deltas, "n_cells"),
            "changed": _total(deltas, "n_changed"),
            "replayed": _total(deltas, "n_replayed"),
            "replay_miss": _total(deltas, "n_replay_miss"),
        },
        "queue_depth": distribution([doc["depth"] for doc in queue]),
    }
    for doc in jobs:
        states = summary["jobs"]["by_state"]
        states[doc["state"]] = states.get(doc["state"], 0) + 1
    return summary
