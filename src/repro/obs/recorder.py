"""The metrics recorder: typed events into a window and a JSONL sink.

:class:`MetricsRecorder` is the single object the instrumented layers
(engine core, sweep orchestrator, micro-batch scheduler, spice solver
counters) write into.  It is deliberately boring:

* ``emit`` stamps the envelope (event type, session-relative ``ts``,
  ``seq``, session id), validates against
  :data:`~repro.obs.events.EVENT_SCHEMAS`, appends to a bounded
  in-memory window (what the service ``/metrics`` endpoint serves),
  and — when a sink path is configured — writes one JSON line,
  flushed per event so a killed process still leaves a readable
  session behind;
* everything is guarded by one lock, because producers span the
  asyncio event loop, scheduler executor threads, and the orchestrator
  caller's thread.  (Worker *processes* never touch the recorder —
  chunk timings travel back in the chunk results and are emitted by
  the parent.)

The file sink opens in append mode: successive CLI runs pointed at the
same ``--metrics-jsonl`` path accumulate distinct sessions in one
file, which is exactly what the CI metrics-gate's cold/warm comparison
wants.  :func:`read_jsonl` is the matching loader (with per-line
schema validation) used by ``benchmarks/metrics_report.py``.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from collections import deque

from repro.obs.events import (
    METRICS_SCHEMA_VERSION,
    MetricsSchemaError,
    validate_event,
)


class MetricsRecorder:
    """See the module docstring.

    Parameters
    ----------
    jsonl_path : optional path; when set every event is appended to it
        as one JSON line (the file is created on first use).
    window : how many recent events the in-memory window retains for
        ``/metrics`` and :meth:`summary` (the JSONL sink is unbounded).
    label : free-form session label (CLI command, service name, ...)
        carried in the ``session_start`` event.
    validate : validate every emitted event against the schema (cheap;
        leave on — an invalid event written to a session file fails
        the CI gate much later and much more confusingly).
    """

    def __init__(self, jsonl_path=None, window=1024, label="", validate=True):
        if int(window) < 1:
            raise ValueError("window must be >= 1")
        self.jsonl_path = None if jsonl_path is None else str(jsonl_path)
        self.label = str(label)
        self.validate = bool(validate)
        self.session = uuid.uuid4().hex[:8]
        self.counts = {}
        self._window = deque(maxlen=int(window))
        self._lock = threading.Lock()
        self._seq = 0
        self._t0 = time.monotonic()
        self._fh = None
        self._closed = False
        self._closing = False
        self.emit(
            "session_start",
            label=self.label,
            schema=METRICS_SCHEMA_VERSION,
            pid=os.getpid(),
        )

    # -- emission -------------------------------------------------------
    def emit(self, event, **fields):
        """Record one typed event; returns the stamped document."""
        with self._lock:
            if self._closed:
                raise RuntimeError("recorder is closed")
            doc = {
                "event": str(event),
                "ts": time.monotonic() - self._t0,
                "seq": self._seq,
                "session": self.session,
                **fields,
            }
            if self.validate:
                validate_event(doc)
            self._seq += 1
            self.counts[doc["event"]] = self.counts.get(doc["event"], 0) + 1
            self._window.append(doc)
            if self.jsonl_path is not None:
                if self._fh is None:
                    self._fh = open(self.jsonl_path, "a", encoding="utf-8")
                self._fh.write(json.dumps(doc, sort_keys=True) + "\n")
                self._fh.flush()
            return doc

    # -- the read side --------------------------------------------------
    def events(self):
        """The in-memory window as a list (oldest first)."""
        with self._lock:
            return list(self._window)

    @property
    def n_emitted(self):
        """Events emitted over the recorder's lifetime (the window may
        retain fewer)."""
        with self._lock:
            return self._seq

    def summary(self):
        """Percentile/rate summary of the in-memory window (see
        :func:`repro.obs.summary.summarize_events`)."""
        from repro.obs.summary import summarize_events

        return summarize_events(self.events())

    # -- lifecycle ------------------------------------------------------
    def close(self, **extra):
        """Emit ``session_end`` and release the sink (idempotent).

        ``extra`` fields ride on the ``session_end`` event (they must
        be declared optional in its schema) — the serve drain stats
        use this to close a session with its shutdown accounting."""
        with self._lock:
            if self._closing:
                return
            self._closing = True
            total = self._seq + 1  # session_end included
            elapsed = time.monotonic() - self._t0
        self.emit("session_end", events=total, elapsed_s=elapsed, **extra)
        with self._lock:
            self._closed = True
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


def read_jsonl(path, validate=True):
    """Load a metrics JSONL session file as a list of event documents.

    With ``validate`` (the default) every line is checked against the
    event schema; a bad line raises :class:`MetricsSchemaError` naming
    the line number — the summarizer and the CI gate treat any invalid
    event as a failed session.
    """
    events = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                raise MetricsSchemaError(
                    f"{path}:{lineno}: not valid JSON: {exc}"
                ) from exc
            if validate:
                try:
                    validate_event(doc)
                except MetricsSchemaError as exc:
                    raise MetricsSchemaError(f"{path}:{lineno}: {exc}") from exc
            events.append(doc)
    return events
