"""Typed session-metrics events and their wire schema.

Every metrics event is one flat JSON object.  Four envelope fields are
common to all events (stamped by the :class:`~repro.obs.recorder.
MetricsRecorder`, never by call sites):

* ``event``   — the event type (a key of :data:`EVENT_SCHEMAS`);
* ``ts``      — seconds since the recorder's session started;
* ``seq``     — per-session monotonically increasing sequence number;
* ``session`` — short random session id, so JSONL files holding several
  appended sessions (the CI metrics-gate appends cold + warm runs into
  one file) can still be grouped.

The per-type payload fields are declared in :data:`EVENT_SCHEMAS` as
``field -> (accepted types, required)``.  Validation is strict in both
directions — a missing required field *and* an undeclared extra field
both fail — because the CI gate treats any schema drift as a breakage:
the JSONL session artifacts are only comparable across commits while
every producer emits exactly the declared shape.

The schema is dependency-free plain data so non-Python consumers can
mirror it from this file alone.
"""

from __future__ import annotations

#: Bump when an event type's payload shape changes incompatibly; the
#: version travels in every ``session_start`` event so a summarizer can
#: refuse to compare sessions across schema generations.
#: v2: ``solve`` events grew required ``factorizations`` /
#: ``pattern_reuses`` counters (sparse linear-solver observability).
#: v3: new ``circuit_lint`` event type (per-study static-analyzer
#: verdict) — a new type is additive, but strict two-way validation
#: means v2 consumers reject files containing it.
METRICS_SCHEMA_VERSION = 3


class MetricsSchemaError(ValueError):
    """An event document that does not match :data:`EVENT_SCHEMAS`."""


#: Envelope fields stamped on every event by the recorder.
COMMON_FIELDS = {
    "event": str,
    "ts": float,
    "seq": int,
    "session": str,
}

_NUM = (int, float)
_OPT_STR = (str, type(None))

#: ``event type -> {field: (accepted types, required)}``.
EVENT_SCHEMAS = {
    # One per recorder lifetime, first line of every session.
    "session_start": {
        "label": (str, True),
        "schema": (int, True),
        "pid": (int, True),
    },
    # Emitted by MetricsRecorder.close().  The optional drain fields
    # are stamped by `repro serve` graceful shutdown (close(**stats)).
    "session_end": {
        "events": (int, True),
        "elapsed_s": (_NUM, True),
        "drained_jobs": (int, False),
        "drain_elapsed_s": (_NUM, False),
        "drain_clean": (bool, False),
        "rejected_during_drain": (int, False),
    },
    # One orchestrated sweep (SweepOrchestrator run_* methods).
    "sweep": {
        "mode": (str, True),
        "n_scenarios": (int, True),
        "n_cached": (int, True),
        "n_computed": (int, True),
        "n_chunks": (int, True),
        "workers": (int, True),
        "parallel": (bool, True),
        "elapsed_s": (_NUM, True),
        "cache_hit_rate": (_NUM, True),
        "fallback_reason": (_OPT_STR, False),
        "worker": (int, False),
    },
    # One evaluated chunk (timed inside the worker, serial or process).
    "chunk": {
        "mode": (str, True),
        "cells": (int, True),
        "elapsed_s": (_NUM, True),
        "worker": (int, False),
    },
    # Solver counters of the spice cells of one chunk (lockstep
    # families: accepted steps, Newton iterations, step rejections,
    # and linear-solver work — ``factorizations`` counts numeric LU
    # factorizations, ``pattern_reuses`` counts matrix refreshes that
    # reused a frozen sparsity pattern / symbolic analysis (always 0 on
    # the dense strategy)).
    "solve": {
        "templates": (str, True),
        "cells": (int, True),
        "accepted_steps": (int, True),
        "newton_iters": (int, True),
        "newton_rejects": (int, True),
        "lte_rejects": (int, True),
        "factorizations": (int, True),
        "pattern_reuses": (int, True),
        "worker": (int, False),
    },
    # Static-analyzer verdict of one spice study: every distinct
    # template in the batch is linted once before the solves are
    # dispatched (see repro.spice.analyze).  ``codes`` is the
    # comma-joined sorted set of diagnostic codes found ("" when
    # clean); ``errors``/``warnings`` split ``findings`` by severity.
    "circuit_lint": {
        "templates": (str, True),
        "cells": (int, True),
        "findings": (int, True),
        "errors": (int, True),
        "warnings": (int, True),
        "codes": (str, True),
        "worker": (int, False),
    },
    # One incremental-recomputation run (SweepOrchestrator.run_delta).
    "study_diff": {
        "mode": (str, True),
        "n_cells": (int, True),
        "n_changed": (int, True),
        "n_unchanged": (int, True),
        "n_removed": (int, True),
        "n_replayed": (int, True),
        "n_replay_miss": (int, True),
    },
    # One coalesced micro-batch group (service scheduler).  ``worker``
    # is the scheduler-worker id on a multi-worker serving tier.
    "batch": {
        "kind": (str, True),
        "jobs": (int, True),
        "cells": (int, True),
        "deduped": (int, True),
        "cached": (int, True),
        "computed": (int, True),
        "elapsed_s": (_NUM, True),
        "worker": (int, False),
    },
    # Queue-depth sample, taken when a micro-batch closes collection.
    "queue": {
        "depth": (int, True),
        "worker": (int, False),
    },
    # One job reaching a terminal state in the service.
    "job": {
        "kind": (str, True),
        "state": (str, True),
        "cells": (int, True),
        "latency_s": (_NUM, True),
        "worker": (int, False),
    },
    # Result-store counter snapshot (cumulative over the store's life).
    "store": {
        "hits": (int, True),
        "misses": (int, True),
        "writes": (int, True),
        "evictions": (int, True),
        "worker": (int, False),
    },
    # One streamed result chunk published to a job (service scheduler).
    "stream": {
        "kind": (str, True),
        "seq": (int, True),
        "cells": (int, True),
        "elapsed_s": (_NUM, True),
        "worker": (int, False),
    },
    # One storage-backend health probe (service /healthz).
    "store_backend": {
        "backend": (str, True),
        "ok": (bool, True),
        "writable": (bool, True),
        "entries": (int, True),
        "elapsed_s": (_NUM, True),
        "error": (_OPT_STR, False),
    },
    # One SimulationEngine.run() (the discrete-time core).
    "engine_run": {
        "n_steps": (int, True),
        "n_components": (int, True),
        "n_events": (int, True),
        "elapsed_s": (_NUM, True),
    },
}


def _type_ok(value, accepted):
    """Type check with the two JSON foot-guns handled: bool is an int
    subclass (a bool must never satisfy an int/float field, and only a
    real bool satisfies a bool field), and ints satisfy float fields
    (JSON has one number type)."""
    if accepted is bool or accepted == (bool,):
        return isinstance(value, bool)
    if not isinstance(accepted, tuple):
        accepted = (accepted,)
    if isinstance(value, bool):
        return bool in accepted
    if isinstance(value, int) and (int in accepted or float in accepted):
        return True
    return isinstance(value, accepted)


def validate_event(doc):
    """Check one event document against the schema; raises
    :class:`MetricsSchemaError` naming the first offending field.
    Returns the document so call sites can validate-and-pass-through.
    """
    if not isinstance(doc, dict):
        raise MetricsSchemaError(
            f"event must be an object, got {type(doc).__name__}"
        )
    for name, accepted in COMMON_FIELDS.items():
        if name not in doc:
            raise MetricsSchemaError(f"event is missing the {name!r} envelope field")
        if not _type_ok(doc[name], accepted):
            raise MetricsSchemaError(
                f"envelope field {name!r} must be {accepted.__name__}, "
                f"got {doc[name]!r}"
            )
    if doc["ts"] < 0.0:
        raise MetricsSchemaError(f"ts must be >= 0, got {doc['ts']!r}")
    if doc["seq"] < 0:
        raise MetricsSchemaError(f"seq must be >= 0, got {doc['seq']!r}")
    schema = EVENT_SCHEMAS.get(doc["event"])
    if schema is None:
        raise MetricsSchemaError(
            f"unknown event type {doc['event']!r}; "
            f"known types: {sorted(EVENT_SCHEMAS)}"
        )
    for name, (accepted, required) in schema.items():
        if name not in doc:
            if required:
                raise MetricsSchemaError(
                    f"{doc['event']!r} event is missing required field {name!r}"
                )
            continue
        if not _type_ok(doc[name], accepted):
            raise MetricsSchemaError(
                f"{doc['event']!r} field {name!r} has invalid value {doc[name]!r}"
            )
    extra = set(doc) - set(schema) - set(COMMON_FIELDS)
    if extra:
        raise MetricsSchemaError(
            f"{doc['event']!r} event carries undeclared fields {sorted(extra)}"
        )
    return doc
