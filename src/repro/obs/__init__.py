"""Dependency-free session metrics: typed events, JSONL sink, summaries.

See :mod:`repro.obs.events` for the wire schema,
:mod:`repro.obs.recorder` for the producer side, and
:mod:`repro.obs.summary` for the percentile/rate reports consumed by
``benchmarks/metrics_report.py`` and the service ``/metrics`` endpoint.
"""

from repro.obs.events import (
    EVENT_SCHEMAS,
    METRICS_SCHEMA_VERSION,
    MetricsSchemaError,
    validate_event,
)
from repro.obs.recorder import MetricsRecorder, read_jsonl
from repro.obs.summary import (
    distribution,
    latency_summary,
    percentile,
    summarize_events,
    warm_cache_hit_rate,
)

__all__ = [
    "EVENT_SCHEMAS",
    "METRICS_SCHEMA_VERSION",
    "MetricsRecorder",
    "MetricsSchemaError",
    "distribution",
    "latency_summary",
    "percentile",
    "read_jsonl",
    "summarize_events",
    "validate_event",
    "warm_cache_hit_rate",
]
