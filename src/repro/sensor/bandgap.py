"""Bandgap voltage references (the paper's Section II-B).

Two references set the oxidation potential: a regular bandgap at 1.2 V on
the WE and a sub-1-V Banba-style bandgap (ref [22]) at 550 mV on the RE,
"independent from temperature and supply".  The model captures the
parabolic temperature curvature around the trim point and a first-order
supply sensitivity, so system analyses can budget the Vox error.
"""

from __future__ import annotations

from repro.util import require_positive


class BandgapReference:
    """A curvature-limited voltage reference.

    V(T, Vdd) = v_nominal * (1 - curvature*(T - t_trim)^2)
                + supply_sensitivity * (Vdd - vdd_nominal)

    ``curvature`` has units 1/K^2 (typ. ~1e-6 -> ~20 ppm/K average tempco
    over the body range); the reference needs ``vdd_min`` to regulate.
    """

    def __init__(self, v_nominal, t_trim=37.0, curvature=1.2e-6,
                 supply_sensitivity=1e-3, vdd_nominal=1.8, vdd_min=1.4):
        self.v_nominal = require_positive(v_nominal, "v_nominal")
        self.t_trim = float(t_trim)
        self.curvature = float(curvature)
        if self.curvature < 0:
            raise ValueError("curvature must be >= 0")
        self.supply_sensitivity = float(supply_sensitivity)
        self.vdd_nominal = require_positive(vdd_nominal, "vdd_nominal")
        self.vdd_min = require_positive(vdd_min, "vdd_min")

    def output(self, temperature=37.0, vdd=1.8):
        """Reference voltage at ``temperature`` (deg C) and supply."""
        if vdd < self.vdd_min:
            # Below headroom the reference follows the supply down.
            return max(0.0, self.v_nominal * vdd / self.vdd_min
                       * (vdd / self.vdd_min))
        dt = temperature - self.t_trim
        v = self.v_nominal * (1.0 - self.curvature * dt * dt)
        return v + self.supply_sensitivity * (vdd - self.vdd_nominal)

    def tempco_ppm(self, t_low=20.0, t_high=45.0):
        """Average temperature coefficient (ppm/K) over a range (box
        method, as datasheets quote it)."""
        if t_high <= t_low:
            raise ValueError("need t_high > t_low")
        vs = [self.output(t) for t in (t_low, self.t_trim, t_high)]
        return ((max(vs) - min(vs)) / self.v_nominal
                / (t_high - t_low) * 1e6)

    def line_regulation(self, vdd_low=1.6, vdd_high=2.0):
        """Output change per supply volt (V/V)."""
        return ((self.output(vdd=vdd_high) - self.output(vdd=vdd_low))
                / (vdd_high - vdd_low))


def regular_bandgap():
    """The 1.2 V reference biasing the working electrode."""
    return BandgapReference(v_nominal=1.2)


def sub_1v_bandgap():
    """The Banba-style 550 mV reference biasing the reference electrode.

    Sub-1-V operation trades a little more curvature; headroom extends
    below the regular bandgap's.
    """
    return BandgapReference(v_nominal=0.55, curvature=2.0e-6,
                            supply_sensitivity=1.5e-3, vdd_min=1.0)
