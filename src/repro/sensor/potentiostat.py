"""Potentiostat and current-readout circuit (the paper's Fig. 3).

The potentiostat (OP1, OP2, MP0, MP2) applies a fixed 650 mV between WE
and RE: a 1.2 V bandgap biases the WE, a 550 mV sub-1V bandgap biases the
RE, and the loop drives the CE so the cell current is supplied without
disturbing RE.  The readout mirrors a copy of I_WE into a resistor,
converting it to the voltage the ADC digitizes.  Budget: 45 uA at 1.8 V
for potentiostat + readout (Section II-B).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util import require_positive


@dataclass(frozen=True)
class PotentiostatSpec:
    """Design constants from the paper."""

    v_we: float = 1.2       # regular bandgap
    v_re: float = 0.55      # sub-1V (Banba) bandgap
    v_supply: float = 1.8
    i_supply: float = 45e-6
    loop_gain: float = 1e4  # op-amp DC gain in the RE control loop


class Potentiostat:
    """Behavioural potentiostat with finite loop gain and compliance.

    ``vox`` (the WE-RE potential actually applied) deviates from the
    ideal 650 mV by the loop-gain error and bandgap offsets; the CE drive
    saturates at the supply rails (compliance limit).
    """

    def __init__(self, spec=None, v_we_offset=0.0, v_re_offset=0.0):
        self.spec = spec or PotentiostatSpec()
        self.v_we_offset = float(v_we_offset)
        self.v_re_offset = float(v_re_offset)

    @property
    def vox_nominal(self):
        """The design value: 1.2 V - 550 mV = 650 mV."""
        return self.spec.v_we - self.spec.v_re

    def applied_vox(self, cell_current=0.0, r_cell=1e3):
        """WE-RE potential under load.

        The finite loop gain leaves a small error proportional to the
        voltage the CE must develop: error ~ (I*R_cell)/loop_gain.
        """
        ideal = (self.spec.v_we + self.v_we_offset
                 - self.spec.v_re - self.v_re_offset)
        v_ce_swing = abs(cell_current) * r_cell
        error = v_ce_swing / self.spec.loop_gain
        return ideal - error

    def within_compliance(self, cell_current, r_cell=1e3):
        """Can the CE driver develop the needed voltage on this cell?"""
        v_needed = self.spec.v_re + abs(cell_current) * r_cell
        return v_needed < self.spec.v_supply

    def max_cell_current(self, r_cell=1e3):
        """Largest cell current before CE compliance is lost."""
        require_positive(r_cell, "r_cell")
        return (self.spec.v_supply - self.spec.v_re) / r_cell


class ReadoutCircuit:
    """Current-mirror copy of I_WE into a resistor (Fig. 3 right half).

    ``mirror_ratio`` scales the copy (1:1 in the paper), ``r_sense``
    converts it to the ADC input voltage; ``mirror_mismatch`` models the
    MP0/MP2 gain error.  The readout "provid[es] isolation for the sensor
    current I_WE" — the cell never sees the sense resistor.
    """

    def __init__(self, r_sense=400e3, mirror_ratio=1.0,
                 mirror_mismatch=0.0, v_supply=1.8):
        self.r_sense = require_positive(r_sense, "r_sense")
        self.mirror_ratio = require_positive(mirror_ratio, "mirror_ratio")
        self.mirror_mismatch = float(mirror_mismatch)
        self.v_supply = require_positive(v_supply, "v_supply")

    def output_voltage(self, i_we):
        """Sense voltage for a WE current (clamped at the rails)."""
        if i_we < 0:
            raise ValueError("the oxidation current is positive by "
                             "convention; got a negative I_WE")
        i_copy = i_we * self.mirror_ratio * (1.0 + self.mirror_mismatch)
        return min(i_copy * self.r_sense, self.v_supply)

    def full_scale_current(self):
        """Current that saturates the readout (the paper's 4 uA design
        point corresponds to r_sense ~ 400 kohm at 1.6 V swing)."""
        return self.v_supply / (self.r_sense * self.mirror_ratio) \
            / (1.0 + self.mirror_mismatch)

    def current_from_voltage(self, v_out):
        """Inverse transfer (for calibration-side computations)."""
        if not 0 <= v_out <= self.v_supply:
            raise ValueError(f"v_out outside rails: {v_out}")
        return v_out / (self.r_sense * self.mirror_ratio
                        * (1.0 + self.mirror_mismatch))
