"""Three-electrode electrochemical cell (the paper's Fig. 2).

A fixed oxidation potential Vox is applied between working (WE) and
reference (RE) electrodes; the resulting faradaic current flows between
WE and counter (CE).  The model combines:

* enzyme-limited steady-state current (from :mod:`repro.sensor.enzyme`),
* the Cottrell diffusion transient after a potential/concentration step,
* double-layer charging with an RC time constant,
* a potential-dependence window: below the oxidation wave the current
  collapses, mirroring why the 650 mV bias matters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.signals import Waveform
from repro.util import require_positive


@dataclass(frozen=True)
class Electrode:
    """Physical working-electrode description."""

    area_cm2: float = 0.25          # screen-printed electrode spot
    c_double_layer: float = 2e-6    # F (double-layer capacitance)
    r_solution: float = 1e3         # ohm (solution resistance)

    def __post_init__(self):
        require_positive(self.area_cm2, "area_cm2")
        require_positive(self.c_double_layer, "c_double_layer")
        require_positive(self.r_solution, "r_solution")


class ThreeElectrodeCell:
    """WE/RE/CE cell with an enzyme-modified working electrode.

    ``v_half_wave`` and ``wave_width`` shape the sigmoidal dependence of
    the faradaic current on the applied WE-RE potential: at the paper's
    650 mV the wave is fully on; far below it the sensor reads nothing.
    """

    def __init__(self, enzyme, electrode=None, v_half_wave=0.45,
                 wave_width=0.06, noise_density=2e-12):
        self.enzyme = enzyme
        self.electrode = electrode or Electrode()
        self.v_half_wave = float(v_half_wave)
        self.wave_width = require_positive(wave_width, "wave_width")
        self.noise_density = float(noise_density)

    def potential_factor(self, v_we_re):
        """Sigmoidal oxidation-wave factor in [0, 1]."""
        x = (v_we_re - self.v_half_wave) / self.wave_width
        if x > 40:
            return 1.0
        if x < -40:
            return 0.0
        return 1.0 / (1.0 + math.exp(-x))

    def steady_state_current(self, concentration, v_we_re=0.65):
        """Amperometric WE current (A) at ``concentration``."""
        j = self.enzyme.current_density(concentration)
        return (j * self.electrode.area_cm2
                * self.potential_factor(v_we_re))

    def chronoamperometry(self, concentration, t_stop, dt=None,
                          v_we_re=0.65, cottrell_tau=0.5, rng=None):
        """Current transient after the potential step at t=0.

        i(t) = i_ss * (1 + sqrt(cottrell_tau/t) decay) + double-layer
        charging spike + optional white noise.  Returns a Waveform.
        """
        require_positive(t_stop, "t_stop")
        dt = dt or t_stop / 500.0
        i_ss = self.steady_state_current(concentration, v_we_re)
        tau_dl = self.electrode.r_solution * self.electrode.c_double_layer
        t = np.arange(dt, t_stop + dt / 2, dt)
        diffusion = i_ss * (1.0 + np.sqrt(cottrell_tau / t) -
                            np.sqrt(cottrell_tau / (t + 10 * cottrell_tau)))
        i_dl = (v_we_re / self.electrode.r_solution) * np.exp(-t / tau_dl)
        current = diffusion + i_dl
        if self.noise_density > 0.0:
            rng = rng or np.random.default_rng(0)
            bandwidth = 0.5 / dt
            sigma = self.noise_density * math.sqrt(bandwidth)
            current = current + rng.normal(0.0, sigma, size=current.shape)
        return Waveform(t, current)

    def settled_current(self, concentration, v_we_re=0.65,
                        settle_time=30.0):
        """Current after the Cottrell transient has decayed — what the
        paper's measurements (Fig. 4) report."""
        wave = self.chronoamperometry(concentration, settle_time,
                                      v_we_re=v_we_re)
        tail = wave.clip_time(0.8 * settle_time, settle_time)
        return tail.mean()

    def calibration_points(self, concentrations, v_we_re=0.65):
        """(concentration, current-density uA/cm^2) rows for Fig. 4."""
        rows = []
        for c in concentrations:
            i = self.steady_state_current(c, v_we_re)
            rows.append((c, i / self.electrode.area_cm2 * 1e6))
        return rows
