"""The complete electronic interface (EI) of the paper's Fig. 3.

Wires together the potentiostat, the current readout, the two bandgap
references and the sigma-delta ADC into the measurement chain:

    concentration -> cell current -> mirrored copy -> ADC code

with the consumption budget of Section II-B (45 uA potentiostat/readout
+ 240 uA ADC at 1.8 V) and helpers to regenerate the Fig. 4 calibration
curves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.adc import SensorADC
from repro.sensor.bandgap import regular_bandgap, sub_1v_bandgap
from repro.sensor.electrochem import ThreeElectrodeCell
from repro.sensor.potentiostat import Potentiostat, ReadoutCircuit
from repro.util import require_positive


@dataclass(frozen=True)
class CalibrationCurve:
    """Fig. 4-style calibration data: current density vs log-concentration."""

    enzyme_name: str
    concentrations_mm: tuple
    delta_current_ua_cm2: tuple

    def log_concentrations(self):
        return tuple(math.log10(c) for c in self.concentrations_mm)

    def sensitivity_per_decade(self):
        """Average slope (uA/cm^2 per decade) over the measured span."""
        logs = self.log_concentrations()
        return ((self.delta_current_ua_cm2[-1]
                 - self.delta_current_ua_cm2[0])
                / (logs[-1] - logs[0]))

    def rows(self):
        """(log10 C, delta-J) rows for tabular output."""
        return list(zip(self.log_concentrations(),
                        self.delta_current_ua_cm2))


class ElectronicInterface:
    """Potentiostat + readout + bandgaps + ADC, as one instrument."""

    def __init__(self, cell, potentiostat=None, readout=None, adc=None,
                 temperature=37.0):
        self.cell = cell
        self.potentiostat = potentiostat or Potentiostat()
        self.readout = readout or ReadoutCircuit()
        self.adc = adc or SensorADC()
        self.temperature = float(temperature)
        self.bandgap_we = regular_bandgap()
        self.bandgap_re = sub_1v_bandgap()

    def applied_potential(self, vdd=1.8):
        """The actual WE-RE potential from the two references."""
        return (self.bandgap_we.output(self.temperature, vdd)
                - self.bandgap_re.output(self.temperature, vdd))

    def cell_current(self, concentration, vdd=1.8):
        """Amperometric current at ``concentration`` (A)."""
        vox = self.applied_potential(vdd)
        i_we = self.cell.steady_state_current(concentration, vox)
        if not self.potentiostat.within_compliance(i_we):
            raise RuntimeError(
                f"cell current {i_we:.3g} A exceeds CE compliance")
        return i_we

    def measure(self, concentration, vdd=1.8, **convert_kwargs):
        """Full chain: concentration -> 14-bit ADC code."""
        i_we = self.cell_current(concentration, vdd)
        i_clipped = min(i_we, self.adc.I_FULL_SCALE)
        return self.adc.convert(i_clipped, **convert_kwargs)

    def concentration_from_code(self, code, c_lo=1e-3, c_hi=100.0):
        """Invert a code back to concentration by bisection on the
        monotone response curve (units follow the enzyme's Km)."""
        i_target = self.adc.current_from_code(code)
        lo, hi = c_lo, c_hi
        for _ in range(80):
            mid = math.sqrt(lo * hi)
            if self.cell_current(mid) < i_target:
                lo = mid
            else:
                hi = mid
        return math.sqrt(lo * hi)

    def supply_current(self, measuring=True):
        """Section II-B budget: 45 uA front-end + 240 uA ADC."""
        front_end = self.potentiostat.spec.i_supply
        return front_end + (self.adc.I_SUPPLY if measuring else 0.0)

    def power(self, measuring=True, vdd=1.8):
        return self.supply_current(measuring) * vdd

    def calibration_curve(self, concentrations_mm=None):
        """Regenerate a Fig. 4 curve for this cell's enzyme."""
        if concentrations_mm is None:
            # The figure's span: log C from -0.8 to 0 (0.16 to 1 mM).
            concentrations_mm = [10.0 ** e
                                 for e in np.linspace(-0.8, 0.0, 9)]
        rows = self.cell.calibration_points(
            concentrations_mm, v_we_re=self.applied_potential())
        return CalibrationCurve(
            enzyme_name=self.cell.enzyme.name,
            concentrations_mm=tuple(c for c, _ in rows),
            delta_current_ua_cm2=tuple(j for _, j in rows),
        )

    @classmethod
    def for_enzyme(cls, enzyme, **kwargs):
        """Convenience: build the EI around a fresh cell."""
        return cls(ThreeElectrodeCell(enzyme), **kwargs)
