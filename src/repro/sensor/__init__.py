"""The target device: lactate biosensor and its electronic interface.

Models the paper's Section II: a three-electrode electrochemical cell
with lactate-oxidase enzymes immobilised on MWCNT-modified screen-printed
electrodes (Fig. 2), the potentiostat + current-readout circuit (Fig. 3),
and the two bandgap references that set the 650 mV oxidation potential
between working and reference electrodes.
"""

from repro.sensor.enzyme import EnzymeKinetics, CLODX, WTLODX, GOX, \
    ENZYME_LIBRARY
from repro.sensor.electrochem import ThreeElectrodeCell, Electrode
from repro.sensor.potentiostat import Potentiostat, ReadoutCircuit
from repro.sensor.bandgap import BandgapReference, regular_bandgap, \
    sub_1v_bandgap
from repro.sensor.interface import ElectronicInterface, CalibrationCurve
from repro.sensor.stability import DriftModel, CalibrationState, Recalibrator

__all__ = [
    "EnzymeKinetics",
    "CLODX",
    "WTLODX",
    "GOX",
    "ENZYME_LIBRARY",
    "ThreeElectrodeCell",
    "Electrode",
    "Potentiostat",
    "ReadoutCircuit",
    "BandgapReference",
    "regular_bandgap",
    "sub_1v_bandgap",
    "ElectronicInterface",
    "CalibrationCurve",
    "DriftModel",
    "CalibrationState",
    "Recalibrator",
]
