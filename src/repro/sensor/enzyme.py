"""Enzyme electrode kinetics (Michaelis-Menten / Hill).

The current density of an amperometric enzyme electrode follows

    j(C) = j_max * C^h / (Km^h + C^h)

with j_max set by enzyme loading and electron-transfer efficiency, Km the
Michaelis constant, and h a Hill cooperativity (1 for ideal MM).  The two
enzymes of the paper's Fig. 4 — commercial (cLODx) and wild-type
(wtLODx) lactate oxidase — are provided as presets whose parameters were
fitted to that figure's calibration curves, including the MWCNT
adhesion/transfer enhancement the paper cites (refs [20, 21]).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.util import require_positive


@dataclass(frozen=True)
class EnzymeKinetics:
    """Kinetic parameters of one enzyme electrode.

    ``j_max`` is in A/cm^2; ``km`` in mol/L (or any unit, as long as the
    concentrations passed in match); ``mwcnt_gain`` multiplies ``j_max``
    when the electrode is MWCNT-modified.
    """

    name: str
    j_max: float
    km: float
    hill: float = 1.0
    mwcnt_gain: float = 1.0

    def __post_init__(self):
        require_positive(self.j_max, "j_max")
        require_positive(self.km, "km")
        require_positive(self.hill, "hill")
        require_positive(self.mwcnt_gain, "mwcnt_gain")

    def current_density(self, concentration):
        """Steady-state current density (A/cm^2) at ``concentration``."""
        if concentration < 0:
            raise ValueError(
                f"concentration must be >= 0, got {concentration}")
        if concentration == 0:
            return 0.0
        c_h = concentration ** self.hill
        return (self.j_max * self.mwcnt_gain * c_h
                / (self.km ** self.hill + c_h))

    def sensitivity(self, concentration):
        """dj/dC (A/cm^2 per concentration unit) — the local slope that
        sets the ADC resolution requirement."""
        if concentration <= 0:
            raise ValueError("sensitivity needs concentration > 0")
        h = self.hill
        km_h = self.km ** h
        c_h = concentration ** h
        return (self.j_max * self.mwcnt_gain * h * km_h
                * concentration ** (h - 1.0) / (km_h + c_h) ** 2)

    def linear_range_upper(self, deviation=0.1):
        """Concentration where the response falls ``deviation`` below the
        initial-slope line — the usable linear range (MM: Km*dev/(1-dev)
        for h=1, solved numerically otherwise)."""
        if not 0 < deviation < 1:
            raise ValueError("deviation must be in (0,1)")
        lo, hi = self.km * 1e-6, self.km * 1e3
        slope0 = self.j_max * self.mwcnt_gain / self.km ** self.hill
        for _ in range(80):
            mid = math.sqrt(lo * hi)
            linear = slope0 * mid ** self.hill
            actual = self.current_density(mid)
            if actual < linear * (1.0 - deviation):
                hi = mid
            else:
                lo = mid
        return math.sqrt(lo * hi)

    def with_mwcnt(self, gain):
        """A copy with an MWCNT enhancement factor applied."""
        return replace(self, mwcnt_gain=gain,
                       name=f"{self.name}+MWCNT")


#: Fitted to Fig. 4: screen-printed electrodes, MWCNT-modified.  The
#: commercial enzyme (cLODx) shows roughly twice the wild-type response
#: over the measured 0.16-1 mM span (concentrations in mM here).
CLODX = EnzymeKinetics(name="cLODx", j_max=15e-6, km=2.5, mwcnt_gain=1.0)
WTLODX = EnzymeKinetics(name="wtLODx", j_max=8e-6, km=3.0, mwcnt_gain=1.0)

#: Glucose oxidase — the paper's other motivating metabolite ("the
#: continuous monitoring of the glucose level ... is an important aid to
#: those patients who suffer from diabetes").  Km in the tens of mM puts
#: the physiological 4-8 mM range on the linear part of the curve.
GOX = EnzymeKinetics(name="GOx", j_max=40e-6, km=22.0, mwcnt_gain=1.0)

#: Name -> preset registry (the sensor-chemistry sweep axis resolves
#: through this, case-insensitively — the enzyme twin of
#: ``repro.link.tissue.TISSUE_LIBRARY``).
ENZYME_LIBRARY = {
    "clodx": CLODX,
    "wtlodx": WTLODX,
    "gox": GOX,
}
