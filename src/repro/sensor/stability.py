"""Sensor stability: drift models and recalibration procedures.

"A main issue of metabolite biosensors is the lack of stability.
Moreover, the sensor parameters are strongly affected by the
immobilization method of the enzyme onto the electrode" (Section II-A).
The MWCNT immobilisation improves matters but does not remove drift;
deployed systems recalibrate periodically (the glucose-monitor practice
the paper's ref [1] describes).

This module models the two dominant ageing mechanisms — enzyme-activity
decay (j_max shrinks) and membrane fouling (an apparent Km increase) —
and provides the one/two-point recalibration procedures that correct a
drifted readout.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sensor.enzyme import EnzymeKinetics
from repro.util import require_positive


@dataclass(frozen=True)
class DriftModel:
    """Exponential enzyme-activity decay plus linear fouling.

    ``activity_half_life`` (seconds) halves j_max; ``fouling_rate``
    (fractional Km increase per day) models diffusion-barrier build-up.
    Defaults correspond to a usable life of 1-2 weeks, typical for
    subcutaneous enzyme electrodes.
    """

    activity_half_life: float = 10.0 * 86400.0
    fouling_rate: float = 0.02  # per day

    def __post_init__(self):
        require_positive(self.activity_half_life, "activity_half_life")
        if self.fouling_rate < 0:
            raise ValueError("fouling_rate must be >= 0")

    def aged_enzyme(self, enzyme, age_seconds):
        """The enzyme's kinetics after ``age_seconds`` of operation."""
        if age_seconds < 0:
            raise ValueError("age_seconds must be >= 0")
        decay = 0.5 ** (age_seconds / self.activity_half_life)
        fouling = 1.0 + self.fouling_rate * age_seconds / 86400.0
        return EnzymeKinetics(
            name=f"{enzyme.name}@{age_seconds / 86400.0:.1f}d",
            j_max=enzyme.j_max * decay,
            km=enzyme.km * fouling,
            hill=enzyme.hill,
            mwcnt_gain=enzyme.mwcnt_gain,
        )

    def sensitivity_loss(self, enzyme, age_seconds, concentration=1.0):
        """Fractional loss of response at ``concentration`` after ageing."""
        fresh = enzyme.current_density(concentration)
        aged = self.aged_enzyme(enzyme, age_seconds).current_density(
            concentration)
        return 1.0 - aged / fresh


@dataclass(frozen=True)
class CalibrationState:
    """Gain/offset correction mapping a drifted readout to concentration
    via the reference (factory) response curve."""

    gain: float = 1.0
    offset: float = 0.0  # in current units

    def correct(self, measured_current):
        """Drifted current -> equivalent fresh-sensor current."""
        return self.gain * measured_current + self.offset


class Recalibrator:
    """One- and two-point recalibration against reference samples.

    ``reference`` is the fresh (factory) enzyme model — the curve codes
    are interpreted against.  A calibration run measures one or two
    known concentrations (e.g. from a finger-prick reference) and fits
    the gain/offset that re-aligns the drifted sensor.
    """

    def __init__(self, reference, area_cm2=0.25):
        self.reference = reference
        self.area = require_positive(area_cm2, "area_cm2")

    def _reference_current(self, concentration):
        return self.reference.current_density(concentration) * self.area

    def one_point(self, concentration, measured_current):
        """Gain-only correction from a single reference sample."""
        require_positive(concentration, "concentration")
        if measured_current <= 0:
            raise ValueError("measured_current must be positive")
        target = self._reference_current(concentration)
        return CalibrationState(gain=target / measured_current)

    def two_point(self, c1, i1, c2, i2):
        """Gain + offset from two reference samples (c1 < c2)."""
        if not 0 < c1 < c2:
            raise ValueError("need 0 < c1 < c2")
        if i2 <= i1:
            raise ValueError("measured currents must increase with "
                             "concentration")
        t1 = self._reference_current(c1)
        t2 = self._reference_current(c2)
        gain = (t2 - t1) / (i2 - i1)
        offset = t1 - gain * i1
        return CalibrationState(gain=gain, offset=offset)

    def concentration_from_current(self, corrected_current, c_lo=1e-3,
                                   c_hi=100.0):
        """Invert the reference curve (bisection on the monotone MM)."""
        if corrected_current <= 0:
            return 0.0
        lo, hi = c_lo, c_hi
        for _ in range(80):
            mid = math.sqrt(lo * hi)
            if self._reference_current(mid) < corrected_current:
                lo = mid
            else:
                hi = mid
        return math.sqrt(lo * hi)

    def readout_error(self, drifted_enzyme, calibration, concentration):
        """Relative concentration error of a drifted sensor after the
        given calibration is applied."""
        require_positive(concentration, "concentration")
        i_meas = drifted_enzyme.current_density(concentration) * self.area
        i_corr = calibration.correct(i_meas)
        reported = self.concentration_from_current(i_corr)
        return (reported - concentration) / concentration
