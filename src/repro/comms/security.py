"""Link-layer security for the telemetry channel.

The paper's Section I: "Security and privacy should be provided during
data transmission."  Implantable-device links have been attacked in the
literature (e.g. ICD replay/eavesdropping), so the reproduction closes
this stated requirement with a lightweight layer sized for a 350 uA
microcontroller: XTEA in CTR mode for confidentiality plus a truncated
CBC-MAC for integrity/authenticity, with a monotonic counter for replay
protection.

XTEA (Needham/Wheeler, 1997) is used because it is the classic choice
for 8/16-bit medical firmware: 64-bit blocks, 128-bit key, a dozen lines
of code, no tables.  This module is a faithful software model for
protocol studies — key management/provisioning is out of scope.
"""

from __future__ import annotations

import struct

from repro.util import require_positive

_MASK32 = 0xFFFFFFFF
_DELTA = 0x9E3779B9
_ROUNDS = 32


def _xtea_encrypt_block(v0, v1, key_words):
    """One 64-bit XTEA block encryption (v0, v1 are uint32)."""
    total = 0
    for _ in range(_ROUNDS):
        v0 = (v0 + ((((v1 << 4) ^ (v1 >> 5)) + v1)
                    ^ (total + key_words[total & 3]))) & _MASK32
        total = (total + _DELTA) & _MASK32
        v1 = (v1 + ((((v0 << 4) ^ (v0 >> 5)) + v0)
                    ^ (total + key_words[(total >> 11) & 3]))) & _MASK32
    return v0, v1


class XteaCipher:
    """XTEA block cipher with CTR-mode stream encryption."""

    def __init__(self, key):
        key = bytes(key)
        if len(key) != 16:
            raise ValueError(f"XTEA needs a 16-byte key, got {len(key)}")
        self._key_words = struct.unpack(">4I", key)

    def encrypt_block(self, block):
        """Encrypt one 8-byte block."""
        if len(block) != 8:
            raise ValueError("XTEA block must be 8 bytes")
        v0, v1 = struct.unpack(">2I", block)
        return struct.pack(">2I", *_xtea_encrypt_block(
            v0, v1, self._key_words))

    def keystream(self, nonce, n_bytes):
        """CTR keystream: E(nonce || counter) blocks concatenated."""
        if not 0 <= nonce < (1 << 32):
            raise ValueError("nonce must fit in 32 bits")
        require_positive(n_bytes, "n_bytes")
        out = bytearray()
        counter = 0
        while len(out) < n_bytes:
            block = struct.pack(">2I", nonce, counter)
            out.extend(self.encrypt_block(block))
            counter += 1
        return bytes(out[:n_bytes])

    def ctr_crypt(self, nonce, data):
        """Encrypt or decrypt (same operation) in CTR mode."""
        data = bytes(data)
        if not data:
            return b""
        stream = self.keystream(nonce, len(data))
        return bytes(a ^ b for a, b in zip(data, stream))

    def cbc_mac(self, data, tag_bytes=4):
        """Truncated CBC-MAC over length-prefixed data.

        The length prefix prevents trivial extension forgeries on this
        fixed-key MAC; 4 tag bytes suit the link's frame budget.
        """
        if not 1 <= tag_bytes <= 8:
            raise ValueError("tag_bytes must be in [1, 8]")
        data = struct.pack(">I", len(data)) + bytes(data)
        if len(data) % 8:
            data += b"\x00" * (8 - len(data) % 8)
        state = b"\x00" * 8
        for i in range(0, len(data), 8):
            block = bytes(a ^ b for a, b in zip(state, data[i:i + 8]))
            state = self.encrypt_block(block)
        return state[:tag_bytes]


class SecureChannel:
    """Authenticated-encryption wrapper for telemetry payloads.

    Wire format: ``counter (4 bytes) || ciphertext || tag (4 bytes)``.
    The counter doubles as the CTR nonce and the replay window: a
    receiver only accepts strictly increasing counters.
    """

    TAG_BYTES = 4
    OVERHEAD = 4 + TAG_BYTES

    def __init__(self, key, role="implant"):
        self._cipher = XteaCipher(key)
        self._tx_counter = 0
        self._rx_highest = -1
        self.role = role

    def seal(self, payload):
        """Encrypt-and-authenticate a payload; bumps the tx counter."""
        payload = bytes(payload)
        if self._tx_counter >= (1 << 32) - 1:
            raise RuntimeError("counter exhausted; rekey required")
        nonce = self._tx_counter
        ciphertext = self._cipher.ctr_crypt(nonce, payload)
        header = struct.pack(">I", nonce)
        tag = self._cipher.cbc_mac(header + ciphertext, self.TAG_BYTES)
        self._tx_counter += 1
        return header + ciphertext + tag

    def open(self, wire):
        """Verify and decrypt; raises ValueError on tamper or replay."""
        wire = bytes(wire)
        if len(wire) < self.OVERHEAD:
            raise ValueError("message shorter than header+tag")
        header, body, tag = (wire[:4], wire[4:-self.TAG_BYTES],
                             wire[-self.TAG_BYTES:])
        expected = self._cipher.cbc_mac(header + body, self.TAG_BYTES)
        if not _constant_time_equal(tag, expected):
            raise ValueError("authentication tag mismatch")
        (nonce,) = struct.unpack(">I", header)
        if nonce <= self._rx_highest:
            raise ValueError(f"replayed counter {nonce}")
        self._rx_highest = nonce
        return self._cipher.ctr_crypt(nonce, body)

    def airtime_overhead(self, bit_rate):
        """Extra transmission time the security layer costs per frame."""
        require_positive(bit_rate, "bit_rate")
        return self.OVERHEAD * 8.0 / bit_rate


def _constant_time_equal(a, b):
    if len(a) != len(b):
        return False
    diff = 0
    for x, y in zip(a, b):
        diff |= x ^ y
    return diff == 0


def paired_channels(key):
    """(implant_side, patch_side) sharing a key but with independent
    counters — note each direction should use its own key in a real
    deployment; the model keeps one key and direction-tagged payloads."""
    return SecureChannel(key, "implant"), SecureChannel(key, "patch")
