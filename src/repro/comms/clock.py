"""Two-phase non-overlapping clock (drives the ASK demodulator, Fig. 9).

"The circuit is driven by a two-phase non-overlapping clock signal
(phi1 and phi2)" — phi1 tracks/holds the carrier peak, phi2 discharges.
On-chip the clock is divided down from the recovered 5 MHz carrier.
"""

from __future__ import annotations

from repro.util import require_in_range, require_positive


class TwoPhaseClock:
    """Generator of the phi1/phi2 waveform pair.

    ``freq`` is the full clock cycle rate (one phi1 pulse and one phi2
    pulse per period); ``non_overlap`` is the dead-time fraction inserted
    after each phase.  Layout per period (fractions):

        phi1 high: [0, 0.5 - g) ; dead: g ; phi2 high: [0.5, 1 - g) ; dead.
    """

    def __init__(self, freq, non_overlap=0.05):
        self.freq = require_positive(float(freq), "freq")
        self.non_overlap = require_in_range(
            float(non_overlap), 0.0, 0.2, "non_overlap")
        self.period = 1.0 / self.freq

    @classmethod
    def from_carrier(cls, carrier_freq, division_ratio, non_overlap=0.05):
        """Divide the recovered carrier down to the demodulator clock
        (e.g. 5 MHz / 25 -> 200 kHz for 100 kbps data)."""
        if division_ratio < 1:
            raise ValueError("division_ratio must be >= 1")
        return cls(carrier_freq / division_ratio, non_overlap)

    def _phase(self, t):
        return (t % self.period) / self.period

    def phi1(self, t):
        """True while phase 1 (track) is high."""
        return self._phase(t) < 0.5 - self.non_overlap

    def phi2(self, t):
        """True while phase 2 (discharge) is high."""
        return 0.5 <= self._phase(t) < 1.0 - self.non_overlap

    def phi1_rising_edges(self, t_start, t_stop):
        """Times of phi1 rising edges in [t_start, t_stop) — the paper's
        bit-decision instants ('detected ... at every rising edge of the
        clock signal phi1')."""
        if t_stop <= t_start:
            raise ValueError("need t_stop > t_start")
        import math

        first = math.ceil(t_start / self.period)
        edges = []
        k = first
        while k * self.period < t_stop:
            edges.append(k * self.period)
            k += 1
        return edges

    def phi1_mid_times(self, t_start, t_stop):
        """Mid-points of the phi1 high windows in [t_start, t_stop) —
        where the held peak is valid for sampling."""
        mid_offset = 0.25 * self.period
        return [e + mid_offset
                for e in self.phi1_rising_edges(t_start - mid_offset,
                                                t_stop - mid_offset)]

    def never_overlaps(self, n_checks=1000):
        """Sampled invariant check: phi1 and phi2 never both high."""
        for i in range(n_checks):
            t = (i / n_checks) * self.period
            if self.phi1(t) and self.phi2(t):
                return False
        return True
