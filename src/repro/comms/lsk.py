"""LSK uplink: implant-side load modulator and patch-side detector.

The implant transmits by short-circuiting its rectifier input (switch M1
of Fig. 8) during logic-0 bits.  The short raises the impedance reflected
into the transmitting coil, so the class-E supply current drops; the
patch digitizes the voltage across its R9 sense resistor and runs a
real-time threshold check.  The check costs microcontroller time, which
is exactly why the paper's uplink runs at 66.6 kbps instead of 100 kbps.
"""

from __future__ import annotations

import math

import numpy as np

from repro.comms.bits import Bitstream
from repro.signals import Waveform
from repro.util import require_positive


class LskModulator:
    """Implant-side load modulator: bits -> short-circuit schedule."""

    def __init__(self, bit_rate=66.6e3):
        self.bit_rate = require_positive(bit_rate, "bit_rate")

    @property
    def bit_period(self):
        return 1.0 / self.bit_rate

    def shorted_func(self, bits, start_time=0.0):
        """``f(t) -> bool``: True while the rectifier input is shorted
        (during logic-0 bits, per the paper's Vup convention)."""
        bits = Bitstream(bits)
        t_bit = self.bit_period

        def shorted(t):
            k = int(math.floor((t - start_time) / t_bit))
            if 0 <= k < len(bits):
                return bits[k] == 0
            return False

        return shorted

    def vup_waveform(self, bits, start_time=0.0, v_high=1.8, dt=None):
        """The Vup control waveform of Fig. 8 (low = shorted)."""
        bits = Bitstream(bits)
        t_bit = self.bit_period
        dt = dt or t_bit / 20.0
        t_stop = start_time + len(bits) * t_bit + t_bit
        n = int(t_stop / dt) + 1
        t = np.linspace(0.0, t_stop, n)
        shorted = self.shorted_func(bits, start_time)
        v = np.array([0.0 if shorted(tk) else v_high for tk in t])
        return Waveform(t, v)

    def supply_current_waveform(self, bits, i_high, i_low, start_time=0.0,
                                rise_time=2e-6, dt=None, noise_rms=0.0,
                                rng=None):
        """Patch supply current during the uplink.

        ``i_high`` flows while the implant is *not* shorted (logic 1),
        ``i_low`` while shorted — the paper's "high voltage drop ... when
        the receiving inductor is not short-circuited".  ``rise_time``
        models the class-E tank's envelope time constant.
        """
        require_positive(i_high, "i_high")
        require_positive(i_low, "i_low")
        if i_low >= i_high:
            raise ValueError("LSK contrast requires i_low < i_high")
        bits = Bitstream(bits)
        t_bit = self.bit_period
        dt = dt or t_bit / 40.0
        t_stop = start_time + len(bits) * t_bit + t_bit
        n = int(t_stop / dt) + 1
        t = np.linspace(0.0, t_stop, n)
        shorted = self.shorted_func(bits, start_time)
        target = np.array([i_low if shorted(tk) else i_high for tk in t])
        # First-order envelope response of the tank.
        alpha = 1.0 - math.exp(-dt / max(rise_time, dt * 1e-3))
        current = np.empty_like(target)
        acc = target[0]
        for i, value in enumerate(target):
            acc += alpha * (value - acc)
            current[i] = acc
        if noise_rms > 0.0:
            rng = rng or np.random.default_rng(1)
            current = current + rng.normal(0.0, noise_rms, size=current.shape)
        return Waveform(t, current)


class LskDetector:
    """Patch-side uplink detector: R9 voltage -> ADC -> threshold check.

    ``adc_bits`` and ``adc_vref`` model the microcontroller's converter;
    ``compute_time`` is the per-sample threshold-check latency that limits
    the bit rate (paper Section III-A).
    """

    def __init__(self, r_sense=1.0, adc_bits=10, adc_vref=3.3,
                 sample_time=2e-6, compute_time=5e-6):
        self.r_sense = require_positive(r_sense, "r_sense")
        self.adc_bits = int(adc_bits)
        if self.adc_bits < 4:
            raise ValueError("adc_bits must be >= 4")
        self.adc_vref = require_positive(adc_vref, "adc_vref")
        self.sample_time = require_positive(sample_time, "sample_time")
        self.compute_time = require_positive(compute_time, "compute_time")

    def adc_code(self, voltage):
        """Quantize one sense voltage to an ADC code."""
        full_scale = (1 << self.adc_bits) - 1
        code = int(round(voltage / self.adc_vref * full_scale))
        return min(max(code, 0), full_scale)

    def max_bit_rate(self, samples_per_bit=1):
        """Highest uplink rate the per-bit sampling+compute allows.

        With the defaults (2 us sample + 5 us threshold check, two
        samples per bit for mid-bit validation) this lands at ~66-70 kbps
        against the 100 kbps downlink — the paper's asymmetry.
        """
        per_bit = samples_per_bit * (self.sample_time + self.compute_time)
        return 1.0 / (per_bit + self.sample_time)

    def detect(self, current_waveform, n_bits, start_time, bit_rate=66.6e3,
               threshold_current=None):
        """Threshold-check the sense current at mid-bit instants.

        Returns (bits, threshold_current).  When ``threshold_current`` is
        None the detector calibrates it as the midpoint of the observed
        span — the microcontroller's startup calibration.
        """
        require_positive(n_bits, "n_bits")
        t_bit = 1.0 / bit_rate
        window = current_waveform.clip_time(
            start_time, start_time + n_bits * t_bit)
        if threshold_current is None:
            threshold_current = 0.5 * (window.min() + window.max())
        sample_times = [start_time + (i + 0.6) * t_bit
                        for i in range(int(n_bits))]
        codes = [self.adc_code(current_waveform.value_at(ts) * self.r_sense)
                 for ts in sample_times]
        threshold_code = self.adc_code(threshold_current * self.r_sense)
        bits = Bitstream([1 if c > threshold_code else 0 for c in codes])
        return bits, threshold_current
