"""Link-layer framing for the duplex telemetry channel.

Frame layout (MSB-first on the wire):

    preamble (8 bits, 10101010) | sync (8 bits, 0xD5)
    | length (8 bits) | payload (length bytes) | crc8 (8 bits)

The preamble gives the demodulator's threshold logic alternating edges to
settle on; the sync byte marks the boundary; CRC-8 covers length+payload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comms.bits import Bitstream
from repro.comms.crc import crc8

PREAMBLE = Bitstream([1, 0, 1, 0, 1, 0, 1, 0])
SYNC = 0xD5
MAX_PAYLOAD = 255


class FrameError(ValueError):
    """Raised when a bitstream cannot be decoded into a frame."""


@dataclass(frozen=True)
class Frame:
    """A link-layer frame carrying ``payload`` bytes."""

    payload: bytes

    def __post_init__(self):
        if len(self.payload) > MAX_PAYLOAD:
            raise ValueError(
                f"payload too long: {len(self.payload)} > {MAX_PAYLOAD}")

    def encode(self):
        """Serialize to a :class:`Bitstream`."""
        body = bytes([len(self.payload)]) + bytes(self.payload)
        check = crc8(body)
        return (PREAMBLE
                + Bitstream.from_int(SYNC, 8)
                + Bitstream.from_bytes(body)
                + Bitstream.from_int(check, 8))

    @property
    def n_bits(self):
        """On-the-wire length in bits."""
        return 8 + 8 + 8 + 8 * len(self.payload) + 8

    def airtime(self, bit_rate):
        """Transmission time at ``bit_rate``."""
        if bit_rate <= 0:
            raise ValueError("bit_rate must be positive")
        return self.n_bits / bit_rate

    @classmethod
    def decode(cls, bits):
        """Parse a frame from a bitstream (which may carry leading idle
        bits before the preamble).  Raises :class:`FrameError` on sync or
        CRC failure."""
        bits = Bitstream(bits)
        sync_pattern = (PREAMBLE + Bitstream.from_int(SYNC, 8)).bits
        # Hunt for preamble+sync.
        start = None
        for i in range(len(bits) - len(sync_pattern) + 1):
            if bits.bits[i:i + len(sync_pattern)] == sync_pattern:
                start = i + len(sync_pattern)
                break
        if start is None:
            raise FrameError("no preamble/sync found")
        if len(bits) < start + 16:
            raise FrameError("truncated frame: no length/CRC")
        length = bits[start:start + 8].to_int()
        end = start + 8 + 8 * length
        if len(bits) < end + 8:
            raise FrameError(
                f"truncated frame: need {8 * length} payload bits")
        body_bits = bits[start:end]
        check = bits[end:end + 8].to_int()
        body = body_bits.to_bytes()
        if crc8(body) != check:
            raise FrameError("CRC mismatch")
        return cls(payload=body[1:])
