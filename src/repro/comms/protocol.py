"""Half-duplex link-layer protocol over the ASK/LSK physical layers.

The inductive link is single-channel: the patch talks (ASK) while the
implant listens, then the implant answers (LSK) while the patch listens.
`LinkProtocol` schedules that turn-taking, applies framing/CRC, injects
channel errors for robustness studies, and accounts airtime so
throughput claims can be checked against the paper's bit rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.comms.bits import Bitstream
from repro.comms.framing import Frame, FrameError
from repro.util import require_positive


@dataclass
class SessionLog:
    """Accounting of one protocol exchange."""

    downlink_bits: int = 0
    uplink_bits: int = 0
    downlink_time: float = 0.0
    uplink_time: float = 0.0
    turnaround_time: float = 0.0
    retries: int = 0
    crc_failures: int = 0

    @property
    def total_time(self):
        return self.downlink_time + self.uplink_time + self.turnaround_time

    def throughput(self, payload_bytes):
        """Effective payload throughput (bit/s) of the exchange."""
        if self.total_time <= 0:
            return 0.0
        return payload_bytes * 8.0 / self.total_time


class LinkProtocol:
    """Command/response exchanges with retry-on-CRC-failure.

    ``downlink_rate`` / ``uplink_rate`` default to the paper's 100 kbps
    and 66.6 kbps.  ``turnaround`` is the half-duplex direction-switch
    dead time.  ``ber`` optionally injects independent bit errors.
    """

    def __init__(self, downlink_rate=100e3, uplink_rate=66.6e3,
                 turnaround=100e-6, ber=0.0, max_retries=3, seed=0):
        self.downlink_rate = require_positive(downlink_rate, "downlink_rate")
        self.uplink_rate = require_positive(uplink_rate, "uplink_rate")
        self.turnaround = float(turnaround)
        if self.turnaround < 0:
            raise ValueError("turnaround must be >= 0")
        if not 0.0 <= ber < 1.0:
            raise ValueError(f"ber must be in [0,1), got {ber}")
        self.ber = ber
        self.max_retries = int(max_retries)
        self._rng = np.random.default_rng(seed)

    def _corrupt(self, bits):
        if self.ber == 0.0:
            return bits
        flips = self._rng.random(len(bits)) < self.ber
        return Bitstream([b ^ int(f) for b, f in zip(bits, flips)])

    def _transfer(self, frame, rate, log, direction):
        """One framed transfer with retries; returns the decoded frame."""
        for attempt in range(self.max_retries + 1):
            encoded = frame.encode()
            received = self._corrupt(encoded)
            airtime = frame.airtime(rate)
            if direction == "down":
                log.downlink_bits += len(encoded)
                log.downlink_time += airtime
            else:
                log.uplink_bits += len(encoded)
                log.uplink_time += airtime
            try:
                return Frame.decode(received)
            except FrameError:
                log.crc_failures += 1
                log.retries += 1 if attempt < self.max_retries else 0
        raise FrameError(
            f"{direction}link failed after {self.max_retries} retries")

    def exchange(self, command_payload, response_payload):
        """Send a command down, receive a response up.

        Returns (decoded_command, decoded_response, SessionLog) as seen by
        the two ends.
        """
        log = SessionLog()
        cmd = self._transfer(Frame(bytes(command_payload)),
                             self.downlink_rate, log, "down")
        log.turnaround_time += self.turnaround
        rsp = self._transfer(Frame(bytes(response_payload)),
                             self.uplink_rate, log, "up")
        log.turnaround_time += self.turnaround
        return cmd, rsp, log

    def measurement_session(self, n_samples, bytes_per_sample=2,
                            command=b"\x01measure", chunk_bytes=255):
        """A full measurement readout: one command, ``n_samples`` worth of
        ADC data framed in ``chunk_bytes`` pieces coming back.  On lossy
        channels smaller chunks survive better (a frame must arrive
        CRC-clean in one piece).  Returns (payload, log)."""
        require_positive(n_samples, "n_samples")
        if not 1 <= chunk_bytes <= 255:
            raise ValueError("chunk_bytes must be in [1, 255]")
        log = SessionLog()
        self._transfer(Frame(bytes(command)), self.downlink_rate, log,
                       "down")
        log.turnaround_time += self.turnaround
        data = bytes((i * 7 + 13) % 256
                     for i in range(int(n_samples) * bytes_per_sample))
        received = bytearray()
        for offset in range(0, len(data), chunk_bytes):
            chunk = data[offset:offset + chunk_bytes]
            rsp = self._transfer(Frame(chunk), self.uplink_rate, log, "up")
            received.extend(rsp.payload)
        log.turnaround_time += self.turnaround
        return bytes(received), log
