"""Bitstream container and pseudo-random bit generation."""

from __future__ import annotations


class Bitstream:
    """An immutable sequence of 0/1 bits with byte conversions.

    >>> Bitstream.from_bytes(b"\\x0f").bits
    (0, 0, 0, 0, 1, 1, 1, 1)
    """

    def __init__(self, bits):
        bits = tuple(int(b) for b in bits)
        if any(b not in (0, 1) for b in bits):
            raise ValueError("bits must be 0 or 1")
        self.bits = bits

    @classmethod
    def from_bytes(cls, data):
        """MSB-first bit expansion of ``data``."""
        bits = []
        for byte in bytes(data):
            for shift in range(7, -1, -1):
                bits.append((byte >> shift) & 1)
        return cls(bits)

    @classmethod
    def from_int(cls, value, width):
        """MSB-first bits of ``value`` in ``width`` bits."""
        if value < 0 or width <= 0:
            raise ValueError("need value >= 0 and width > 0")
        if value >= (1 << width):
            raise ValueError(f"{value} does not fit in {width} bits")
        return cls(((value >> (width - 1 - i)) & 1) for i in range(width))

    def to_bytes(self):
        """Inverse of :meth:`from_bytes`; length must be a multiple of 8."""
        if len(self.bits) % 8 != 0:
            raise ValueError(
                f"bit count {len(self.bits)} is not a multiple of 8")
        out = bytearray()
        for i in range(0, len(self.bits), 8):
            byte = 0
            for b in self.bits[i:i + 8]:
                byte = (byte << 1) | b
            out.append(byte)
        return bytes(out)

    def to_int(self):
        """MSB-first integer value."""
        value = 0
        for b in self.bits:
            value = (value << 1) | b
        return value

    # -- sequence protocol ---------------------------------------------
    def __len__(self):
        return len(self.bits)

    def __iter__(self):
        return iter(self.bits)

    def __getitem__(self, idx):
        got = self.bits[idx]
        return Bitstream(got) if isinstance(idx, slice) else got

    def __add__(self, other):
        return Bitstream(self.bits + tuple(other))

    def __eq__(self, other):
        if isinstance(other, Bitstream):
            return self.bits == other.bits
        return self.bits == tuple(other)

    def __hash__(self):
        return hash(self.bits)

    def hamming_distance(self, other):
        """Bit errors between equal-length streams."""
        other = tuple(other)
        if len(other) != len(self.bits):
            raise ValueError("length mismatch")
        return sum(a != b for a, b in zip(self.bits, other))

    def transitions(self):
        """Number of 0->1 / 1->0 transitions (clock content indicator)."""
        return sum(a != b for a, b in zip(self.bits, self.bits[1:]))

    def __repr__(self):
        shown = "".join(str(b) for b in self.bits[:32])
        more = "..." if len(self.bits) > 32 else ""
        return f"Bitstream({shown}{more}, n={len(self.bits)})"


def prbs(n_bits, order=7, seed=0x5A):
    """Pseudo-random binary sequence from an LFSR.

    ``order`` selects the polynomial: 7 (x^7+x^6+1) or 15 (x^15+x^14+1),
    the standard PRBS7/PRBS15 test patterns.
    """
    taps = {7: (7, 6), 15: (15, 14)}
    if order not in taps:
        raise ValueError(f"unsupported PRBS order {order}; use {list(taps)}")
    if n_bits <= 0:
        raise ValueError("n_bits must be positive")
    a, b = taps[order]
    mask = (1 << order) - 1
    state = seed & mask
    if state == 0:
        state = 1  # all-zero LFSR state is degenerate
    bits = []
    for _ in range(int(n_bits)):
        new = ((state >> (a - 1)) ^ (state >> (b - 1))) & 1
        state = ((state << 1) | new) & mask
        bits.append(new)
    return Bitstream(bits)
