"""Cyclic-redundancy checks for the telemetry frames.

The paper lists "security and privacy ... during data transmission" among
the key challenges; at the link layer the minimum is integrity.  CRC-8
(poly 0x07, as in ATM HEC) protects short command frames; CRC-16-CCITT
protects measurement payloads.
"""

from __future__ import annotations


def _crc(data, poly, width, init=0):
    register = init
    top = 1 << (width - 1)
    mask = (1 << width) - 1
    for byte in bytes(data):
        register ^= byte << (width - 8)
        for _ in range(8):
            if register & top:
                register = ((register << 1) ^ poly) & mask
            else:
                register = (register << 1) & mask
    return register


def crc8(data):
    """CRC-8 with polynomial x^8+x^2+x+1 (0x07), init 0.

    >>> hex(crc8(b"123456789"))
    '0xf4'
    """
    return _crc(data, 0x07, 8)


def crc16_ccitt(data):
    """CRC-16-CCITT (poly 0x1021, init 0xFFFF).

    >>> hex(crc16_ccitt(b"123456789"))
    '0x29b1'
    """
    return _crc(data, 0x1021, 16, init=0xFFFF)
