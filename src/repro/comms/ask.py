"""ASK downlink: modulator (patch side) and demodulator (implant side).

Modulation depth is set by the R7/R8 divider in the patch (paper Fig. 6):
transmitting a logic 0 reduces the carrier drive.  The paper's measured
power levels — 5 mW unmodulated, ~3 mW during a logic 1, ~1 mW during a
logic 0 — correspond to amplitude factors of sqrt(3/5) and sqrt(1/5).

The demodulator mirrors Fig. 9/10: a switched peak detector clocked by a
two-phase non-overlapping clock; the held peak is read as a logic level
at every phi1 edge.
"""

from __future__ import annotations

import math

import numpy as np

from repro.comms.bits import Bitstream
from repro.comms.clock import TwoPhaseClock
from repro.signals import Waveform, envelope_peaks
from repro.util import require_in_range, require_positive


class AskModulator:
    """Patch-side amplitude modulator.

    ``depth`` is the relative amplitude reduction for a logic 0
    (0 = no modulation, 1 = full on-off keying).  ``high_scale`` optionally
    derates the logic-1 amplitude relative to idle (the paper's 3 mW vs
    5 mW idle implies high_scale = sqrt(3/5)).
    """

    def __init__(self, carrier_freq=5e6, bit_rate=100e3, depth=0.42,
                 amplitude=1.0, high_scale=None):
        self.carrier_freq = require_positive(carrier_freq, "carrier_freq")
        self.bit_rate = require_positive(bit_rate, "bit_rate")
        self.depth = require_in_range(depth, 0.0, 1.0, "depth")
        self.amplitude = require_positive(amplitude, "amplitude")
        self.high_scale = (math.sqrt(3.0 / 5.0) if high_scale is None
                           else float(high_scale))

    @classmethod
    def from_divider(cls, r7, r8, **kwargs):
        """Depth from the paper's R7/R8 divider: transmitting a 0 drops
        the drive to R8/(R7+R8) of the full level."""
        require_positive(r7, "r7")
        require_positive(r8, "r8")
        depth = r7 / (r7 + r8)
        return cls(depth=depth, **kwargs)

    @property
    def bit_period(self):
        return 1.0 / self.bit_rate

    def amplitude_for_bit(self, bit):
        """Carrier amplitude while transmitting ``bit``."""
        base = self.amplitude * self.high_scale
        return base if bit else base * (1.0 - self.depth)

    def power_ratio(self):
        """(P_low / P_high) between the two bit levels."""
        return (1.0 - self.depth) ** 2

    def envelope(self, bits, delay=0.0, idle_time=0.0):
        """Amplitude-envelope waveform for a bit sequence (idle carrier
        before ``delay`` and for ``idle_time`` after the last bit)."""
        bits = Bitstream(bits)
        t_bit = self.bit_period
        eps = t_bit * 1e-6
        times, values = [0.0], [self.amplitude]

        def emit(t, v):
            if t > times[-1]:
                times.append(t)
                values.append(v)

        for i, bit in enumerate(bits):
            t0 = delay + i * t_bit
            level = self.amplitude_for_bit(bit)
            emit(t0 + eps, level)
            emit(t0 + t_bit, level)
        t_end = delay + len(bits) * t_bit
        emit(t_end + eps, self.amplitude)
        emit(t_end + max(idle_time, 2 * eps), self.amplitude)
        return Waveform(times, values)

    def waveform(self, bits, delay=0.0, idle_time=0.0,
                 samples_per_cycle=16, noise_rms=0.0, rng=None):
        """Full carrier waveform (for the demodulator and spice tests)."""
        bits = Bitstream(bits)
        env = self.envelope(bits, delay, idle_time)
        t_stop = env.t_stop
        n = int(t_stop * self.carrier_freq * samples_per_cycle)
        t = np.linspace(0.0, t_stop, n)
        carrier = np.sin(2.0 * np.pi * self.carrier_freq * t)
        v = env.value_at(t) * carrier
        if noise_rms > 0.0:
            rng = rng or np.random.default_rng(0)
            v = v + rng.normal(0.0, noise_rms, size=v.shape)
        return Waveform(t, v)


class AskDemodulator:
    """Implant-side switched peak detector (paper Fig. 9/10).

    The carrier is peak-detected cycle by cycle (the M10/C2 track stage);
    the two-phase clock defines when the held value is read; a threshold
    between the two expected levels slices bits.
    """

    def __init__(self, carrier_freq=5e6, bit_rate=100e3, threshold=None,
                 clock=None):
        self.carrier_freq = require_positive(carrier_freq, "carrier_freq")
        self.bit_rate = require_positive(bit_rate, "bit_rate")
        self.threshold = threshold  # None -> adaptive (midpoint)
        self.clock = clock or TwoPhaseClock(bit_rate)

    def detect_envelope(self, waveform):
        """Cycle-peak envelope (the C2 held voltage over time)."""
        return envelope_peaks(waveform, self.carrier_freq)

    def _resolve_threshold(self, envelope, t_data_start, t_data_stop):
        if self.threshold is not None:
            return self.threshold
        window = envelope.clip_time(t_data_start, t_data_stop)
        return 0.5 * (window.min() + window.max())

    def demodulate(self, waveform, n_bits, data_start):
        """Recover ``n_bits`` transmitted from ``data_start`` onward.

        Returns (bits, sample_times, threshold).  Bits are decided at the
        centre of each bit period — the settled phi1 read instant.
        """
        require_positive(n_bits, "n_bits")
        env = self.detect_envelope(waveform)
        t_bit = 1.0 / self.bit_rate
        t_stop = data_start + n_bits * t_bit
        threshold = self._resolve_threshold(env, data_start, t_stop)
        sample_times = np.array(
            [data_start + (i + 0.5) * t_bit for i in range(int(n_bits))])
        levels = env.value_at(sample_times)
        bits = Bitstream([1 if lv > threshold else 0 for lv in levels])
        return bits, sample_times, threshold

    def bit_error_rate(self, sent_bits, waveform, data_start):
        """BER of a demodulation run against the known bit pattern."""
        sent = Bitstream(sent_bits)
        got, _, _ = self.demodulate(waveform, len(sent), data_start)
        return sent.hamming_distance(got) / len(sent)


def ask_ber_theory(depth, snr_amplitude):
    """Theoretical ASK BER with a mid-level threshold.

    ``snr_amplitude`` = carrier amplitude / noise RMS at the detector.
    The level separation is ``depth * amplitude``; with Gaussian noise the
    error probability is Q(separation / (2 * sigma)).
    """
    require_in_range(depth, 0.0, 1.0, "depth")
    require_positive(snr_amplitude, "snr_amplitude")
    argument = depth * snr_amplitude / 2.0
    return 0.5 * math.erfc(argument / math.sqrt(2.0))
