"""Bidirectional data communication over the inductive link.

Downlink (patch -> implant): the class-E carrier is amplitude-modulated
(ASK) at 100 kbps, with the modulation depth set by the R7/R8 divider; the
implant's two-phase switched demodulator (paper Fig. 9/10) recovers bits.

Uplink (implant -> patch): load-shift keying (LSK) at 66.6 kbps — the
implant shorts its rectifier input (Fig. 8's M1) and the patch detects the
resulting supply-current change across R9.  The uplink rate is lower than
the downlink's because the patch microcontroller needs computation time
for the real-time threshold check (paper Section III-A).
"""

from repro.comms.bits import Bitstream, prbs
from repro.comms.crc import crc8, crc16_ccitt
from repro.comms.framing import Frame, FrameError, PREAMBLE
from repro.comms.clock import TwoPhaseClock
from repro.comms.ask import AskModulator, AskDemodulator, ask_ber_theory
from repro.comms.lsk import LskModulator, LskDetector
from repro.comms.protocol import LinkProtocol, SessionLog
from repro.comms.security import XteaCipher, SecureChannel, paired_channels

__all__ = [
    "Bitstream",
    "prbs",
    "crc8",
    "crc16_ccitt",
    "Frame",
    "FrameError",
    "PREAMBLE",
    "TwoPhaseClock",
    "AskModulator",
    "AskDemodulator",
    "ask_ber_theory",
    "LskModulator",
    "LskDetector",
    "LinkProtocol",
    "SessionLog",
    "XteaCipher",
    "SecureChannel",
    "paired_channels",
]
