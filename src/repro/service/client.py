"""Clients for the simulation service, plus the closed-loop load
generator used by the serving benchmark and example.

* :class:`ServiceClient` — in-process: drives a
  :class:`~repro.service.service.SimulationService` directly (no
  sockets); what `examples/` and the benches use.
* :class:`HttpServiceClient` — the same surface over the HTTP
  front-end via asyncio streams (stdlib only); raises the same typed
  errors the in-process path does (429 -> QueueFullError, 400 ->
  SimRequestError, 404 -> JobNotFoundError, ...).
* :class:`LoadGenerator` — N closed-loop clients (submit, await
  result, repeat) with latency/throughput accounting.
"""

from __future__ import annotations

import asyncio
import json
import time

from repro.service.jobs import (
    JobCancelledError,
    JobFailedError,
    JobNotFoundError,
    QueueFullError,
    ServiceError,
    SimRequestError,
)

_ERRORS_BY_STATUS = {
    400: SimRequestError,
    404: JobNotFoundError,
    409: JobCancelledError,
    429: QueueFullError,
}


class ServiceClient:
    """In-process client: the service's native async surface with the
    same call shapes as the HTTP client, so examples and benches can
    swap transports freely."""

    def __init__(self, service):
        self.service = service

    async def submit(self, request, priority=0):
        """Submit; returns the job id (raises the typed validation /
        backpressure errors)."""
        return self.service.submit(request, priority=priority).id

    async def result(self, job_id, timeout=None):
        return await self.service.result(job_id, timeout=timeout)

    async def job(self, job_id):
        return self.service.job(job_id).snapshot()

    async def cancel(self, job_id):
        return self.service.cancel(job_id)

    async def stats(self):
        return self.service.stats()


class HttpServiceClient:
    """Stdlib-only async HTTP client for the service front-end (one
    connection per request, mirroring the server's one-shot model)."""

    def __init__(self, host="127.0.0.1", port=8765, poll_interval=0.02):
        self.host = host
        self.port = int(port)
        self.poll_interval = float(poll_interval)

    async def _request(self, method, path, payload=None):
        body = b"" if payload is None else json.dumps(payload).encode()
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n"
            ).encode("ascii")
            writer.write(head + body)
            await writer.drain()
            raw = await reader.read()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass
        header, _, rest = raw.partition(b"\r\n\r\n")
        status_line = header.split(b"\r\n", 1)[0].decode("latin-1")
        try:
            status = int(status_line.split()[1])
        except (IndexError, ValueError):
            raise ServiceError(f"malformed response: {status_line!r}")
        doc = json.loads(rest.decode("utf-8")) if rest else {}
        if status != 200:
            error = _ERRORS_BY_STATUS.get(status, ServiceError)
            raise error(doc.get("message", status_line))
        return doc

    async def submit(self, payload, priority=0):
        body = dict(payload)
        if priority:
            body["priority"] = priority
        doc = await self._request("POST", "/submit", body)
        return doc["job_id"]

    async def job(self, job_id):
        return await self._request("GET", f"/job/{job_id}")

    async def result(self, job_id, timeout=30.0):
        """Poll ``/job/<id>`` until terminal; the typed terminal errors
        match the in-process client's."""
        deadline = time.monotonic() + timeout
        while True:
            doc = await self.job(job_id)
            state = doc["state"]
            if state == "done":
                return doc["result"]
            if state == "cancelled":
                raise JobCancelledError(f"job {job_id} was cancelled")
            if state == "failed":
                raise JobFailedError(f"job {job_id} failed: {doc.get('error')}")
            if time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} still {state} after {timeout} s")
            await asyncio.sleep(self.poll_interval)

    async def cancel(self, job_id):
        doc = await self._request("POST", f"/job/{job_id}/cancel")
        return doc["cancelled"]

    async def stats(self):
        return await self._request("GET", "/stats")

    async def health(self):
        return await self._request("GET", "/healthz")


class LoadGenerator:
    """``concurrency`` closed-loop clients draining a shared request
    list: each worker submits one request, awaits its result, then
    takes the next — the standard closed-loop model, so measured
    latency includes queueing and the batching window.

    On a queue-full rejection the worker backs off and retries the
    same request (counted in ``rejected``), which is exactly how a
    well-behaved client should treat 429 — but every request has one
    ``timeout`` budget covering submit retries *and* the result wait,
    so a dead or never-started service surfaces as failed requests,
    never as a hang.
    """

    def __init__(
        self, client, payloads, concurrency=8, retry_backoff=0.02, timeout=60.0
    ):
        self.client = client
        self.payloads = list(payloads)
        self.concurrency = max(1, int(concurrency))
        self.retry_backoff = float(retry_backoff)
        self.timeout = float(timeout)
        self.latencies = []
        self.rejected = 0
        self.failed = 0

    async def _worker(self, feed):
        while True:
            try:
                payload = next(feed)
            except StopIteration:
                return
            t0 = time.monotonic()
            deadline = t0 + self.timeout
            job_id = None
            while True:
                try:
                    job_id = await self.client.submit(payload)
                    break
                except QueueFullError:
                    self.rejected += 1
                    if time.monotonic() + self.retry_backoff >= deadline:
                        self.failed += 1
                        break
                    await asyncio.sleep(self.retry_backoff)
                except (ServiceError, OSError):
                    # Dead/unreachable service: a failed request, not
                    # a crashed load run.
                    self.failed += 1
                    break
            if job_id is None:
                continue
            try:
                await self.client.result(
                    job_id, timeout=max(0.0, deadline - time.monotonic())
                )
                self.latencies.append(time.monotonic() - t0)
            except (
                JobFailedError,
                JobCancelledError,
                TimeoutError,
                ServiceError,
                OSError,
            ):
                self.failed += 1

    async def run(self):
        """Drive every payload to completion; returns the summary.

        The ``latency`` block is the shared percentile document
        (:func:`repro.obs.summary.latency_summary`): ``{"count": 0}``
        when nothing completed — never silent ``None`` percentiles.
        """
        from repro.obs import latency_summary

        feed = iter(self.payloads)
        t0 = time.monotonic()
        await asyncio.gather(*(self._worker(feed) for _ in range(self.concurrency)))
        elapsed = time.monotonic() - t0
        done = len(self.latencies)
        return {
            "requests": len(self.payloads),
            "completed": done,
            "failed": self.failed,
            "rejected_retried": self.rejected,
            "concurrency": self.concurrency,
            "elapsed_s": elapsed,
            "throughput_rps": done / elapsed if elapsed > 0 else 0.0,
            "latency": latency_summary(self.latencies),
        }
