"""Clients for the simulation service, plus the closed-loop load
generator used by the serving benchmark and example.

* :class:`ServiceClient` — in-process: drives a
  :class:`~repro.service.service.SimulationService` directly (no
  sockets); what `examples/` and the benches use.
* :class:`HttpServiceClient` — the same surface over the HTTP
  front-end via asyncio streams (stdlib only); raises the same typed
  errors the in-process path does (429 -> QueueFullError, 400 ->
  SimRequestError, 404 -> JobNotFoundError, 503 ->
  ServiceUnavailableError, ...).
* :class:`LoadGenerator` — N closed-loop clients (submit, await
  result, repeat) with latency/throughput accounting.

Both clients stream partial results: ``iter_results(job_id)`` yields
the job's chunk documents as the scheduler publishes them (the HTTP
client consumes the ``/job/<id>/stream`` NDJSON endpoint), raising the
job's typed terminal error if it fails or is cancelled mid-stream.
"""

from __future__ import annotations

import asyncio
import json
import time

from repro.service.jobs import (
    JobCancelledError,
    JobFailedError,
    JobNotFoundError,
    QueueFullError,
    ServiceError,
    ServiceUnavailableError,
    SimRequestError,
)

_ERRORS_BY_STATUS = {
    400: SimRequestError,
    404: JobNotFoundError,
    409: JobCancelledError,
    429: QueueFullError,
    503: ServiceUnavailableError,
}


def _terminal_error(job_id, state, error=None):
    """The typed error for a non-done terminal state, or None."""
    if state == "cancelled":
        return JobCancelledError(f"job {job_id} was cancelled")
    if state == "failed":
        return JobFailedError(f"job {job_id} failed: {error}")
    return None


class ServiceClient:
    """In-process client: the service's native async surface with the
    same call shapes as the HTTP client, so examples and benches can
    swap transports freely."""

    def __init__(self, service):
        self.service = service

    async def submit(self, request, priority=0):
        """Submit; returns the job id (raises the typed validation /
        backpressure errors)."""
        return self.service.submit(request, priority=priority).id

    async def result(self, job_id, timeout=None):
        return await self.service.result(job_id, timeout=timeout)

    async def iter_results(self, job_id):
        """Yield the job's streamed chunk documents as they are
        published; raises the typed terminal error if the job ends
        failed/cancelled (chunks streamed before the failure are
        still yielded first)."""
        job = self.service.job(job_id)
        async for chunk in job.iter_chunks():
            yield chunk
        error = _terminal_error(job_id, job.state.value, job.error)
        if error is not None:
            raise error

    async def job(self, job_id):
        return self.service.job(job_id).snapshot()

    async def cancel(self, job_id):
        return self.service.cancel(job_id)

    async def stats(self):
        return self.service.stats()

    async def health(self):
        return self.service.health()


class HttpServiceClient:
    """Stdlib-only async HTTP client for the service front-end (one
    connection per request, mirroring the server's one-shot model)."""

    def __init__(self, host="127.0.0.1", port=8765, poll_interval=0.02):
        self.host = host
        self.port = int(port)
        self.poll_interval = float(poll_interval)

    async def _request(self, method, path, payload=None, accept=(200,)):
        body = b"" if payload is None else json.dumps(payload).encode()
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n"
            ).encode("ascii")
            writer.write(head + body)
            await writer.drain()
            try:
                raw = await reader.read()
            except (ConnectionError, OSError) as exc:
                # The server (or the network) dropped the connection
                # mid-response: a transport failure, not a protocol one.
                raise ServiceError(f"connection lost mid-response: {exc}") from exc
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass
        header, sep, rest = raw.partition(b"\r\n\r\n")
        if not sep:
            raise ServiceError(
                f"truncated response (no header/body separator in "
                f"{len(raw)} bytes)"
            )
        status_line = header.split(b"\r\n", 1)[0].decode("latin-1")
        try:
            status = int(status_line.split()[1])
        except (IndexError, ValueError):
            raise ServiceError(f"malformed response: {status_line!r}")
        try:
            doc = json.loads(rest.decode("utf-8")) if rest else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            if status in accept or status == 200:
                raise ServiceError(
                    f"malformed response body (status {status}): {exc}"
                ) from exc
            doc = {}
        if status not in accept:
            error = _ERRORS_BY_STATUS.get(status, ServiceError)
            raise error(doc.get("message", status_line))
        return doc

    async def submit(self, payload, priority=0):
        body = dict(payload)
        if priority:
            body["priority"] = priority
        doc = await self._request("POST", "/submit", body)
        return doc["job_id"]

    async def job(self, job_id):
        return await self._request("GET", f"/job/{job_id}")

    async def result(self, job_id, timeout=30.0):
        """Poll ``/job/<id>`` until terminal; the typed terminal errors
        match the in-process client's."""
        deadline = time.monotonic() + timeout
        while True:
            doc = await self.job(job_id)
            state = doc["state"]
            if state == "done":
                return doc["result"]
            error = _terminal_error(job_id, state, doc.get("error"))
            if error is not None:
                raise error
            if time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} still {state} after {timeout} s")
            await asyncio.sleep(self.poll_interval)

    async def iter_results(self, job_id):
        """Consume ``/job/<id>/stream``: yield each chunk document as
        its NDJSON line arrives; raises the typed terminal error for a
        failed/cancelled job, and :class:`ServiceError` if the stream
        ends without a terminal line (server died mid-stream)."""
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            head = (
                f"GET /job/{job_id}/stream HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Connection: close\r\n\r\n"
            ).encode("ascii")
            writer.write(head)
            await writer.drain()
            status_line = (await reader.readline()).decode("latin-1")
            try:
                status = int(status_line.split()[1])
            except (IndexError, ValueError):
                raise ServiceError(f"malformed response: {status_line!r}")
            while True:  # headers until the blank line
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            if status != 200:
                body = await reader.read()
                try:
                    doc = json.loads(body.decode("utf-8")) if body else {}
                except (UnicodeDecodeError, json.JSONDecodeError):
                    doc = {}
                error = _ERRORS_BY_STATUS.get(status, ServiceError)
                raise error(doc.get("message", status_line))
            while True:
                line = await reader.readline()
                if not line:
                    raise ServiceError(
                        f"stream for job {job_id} ended without a "
                        f"terminal event"
                    )
                try:
                    doc = json.loads(line.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    raise ServiceError(f"malformed stream line: {exc}") from exc
                if doc.get("event") == "end":
                    error = _terminal_error(job_id, doc.get("state"), doc.get("error"))
                    if error is not None:
                        raise error
                    return
                yield doc
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def cancel(self, job_id):
        doc = await self._request("POST", f"/job/{job_id}/cancel")
        return doc["cancelled"]

    async def stats(self):
        return await self._request("GET", "/stats")

    async def health(self):
        """The ``/healthz`` document — returned for both the healthy
        (200) and unhealthy (503) probe, so monitoring sees the
        backend diagnosis instead of a bare error."""
        return await self._request("GET", "/healthz", accept=(200, 503))


class LoadGenerator:
    """``concurrency`` closed-loop clients draining a shared request
    list: each worker submits one request, awaits its result, then
    takes the next — the standard closed-loop model, so measured
    latency includes queueing and the batching window.

    On a queue-full rejection the worker backs off and retries the
    same request (counted in ``rejected``), which is exactly how a
    well-behaved client should treat 429 — but every request has one
    ``timeout`` budget covering submit retries *and* the result wait,
    so a dead or never-started service surfaces as failed requests,
    never as a hang.
    """

    def __init__(
        self, client, payloads, concurrency=8, retry_backoff=0.02, timeout=60.0
    ):
        self.client = client
        self.payloads = list(payloads)
        self.concurrency = max(1, int(concurrency))
        self.retry_backoff = float(retry_backoff)
        self.timeout = float(timeout)
        self.latencies = []
        self.rejected = 0
        self.failed = 0

    async def _worker(self, feed):
        while True:
            try:
                payload = next(feed)
            except StopIteration:
                return
            t0 = time.monotonic()
            deadline = t0 + self.timeout
            job_id = None
            while True:
                try:
                    job_id = await self.client.submit(payload)
                    break
                except QueueFullError:
                    self.rejected += 1
                    if time.monotonic() + self.retry_backoff >= deadline:
                        self.failed += 1
                        break
                    await asyncio.sleep(self.retry_backoff)
                except (ServiceError, OSError):
                    # Dead/unreachable/draining service: a failed
                    # request, not a crashed load run.
                    self.failed += 1
                    break
            if job_id is None:
                continue
            try:
                await self.client.result(
                    job_id, timeout=max(0.0, deadline - time.monotonic())
                )
                self.latencies.append(time.monotonic() - t0)
            except (
                JobFailedError,
                JobCancelledError,
                TimeoutError,
                ServiceError,
                OSError,
            ):
                self.failed += 1

    async def run(self):
        """Drive every payload to completion; returns the summary.

        The ``latency`` block is the shared percentile document
        (:func:`repro.obs.summary.latency_summary`): ``{"count": 0}``
        when nothing completed — never silent ``None`` percentiles.
        """
        from repro.obs import latency_summary

        feed = iter(self.payloads)
        t0 = time.monotonic()
        await asyncio.gather(*(self._worker(feed) for _ in range(self.concurrency)))
        elapsed = time.monotonic() - t0
        done = len(self.latencies)
        return {
            "requests": len(self.payloads),
            "completed": done,
            "failed": self.failed,
            "rejected_retried": self.rejected,
            "concurrency": self.concurrency,
            "elapsed_s": elapsed,
            "throughput_rps": done / elapsed if elapsed > 0 else 0.0,
            "latency": latency_summary(self.latencies),
        }
