"""The asyncio simulation service: queue + scheduler workers +
accounting.

:class:`SimulationService` is the in-process serving object the HTTP
front-end (:mod:`repro.service.http`) and the in-process
:class:`~repro.service.client.ServiceClient` both drive.  One instance
owns one physics configuration (system + controller), one bounded
:class:`~repro.service.jobs.JobQueue`, one or more
:class:`~repro.service.scheduler.MicroBatchScheduler` workers draining
it, and the job registry with latency accounting.

Multi-worker serving (``scheduler_workers > 1``): every worker runs
its own dispatch loop over the shared queue, its own serial
orchestrator over the *shared* storage backend, and ships engine
slices to a shared :class:`~concurrent.futures.ProcessPoolExecutor`
(created lazily on :meth:`start`; workers re-open the backend from its
URI).  Cross-worker duplicate cells are resolved through one shared
:class:`~repro.service.scheduler.InFlightIndex` plus the backend:
a cell is computed exactly once no matter which worker's micro-batch
it lands in.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import time
from collections import OrderedDict, deque
from concurrent.futures import ProcessPoolExecutor

from repro.engine.parallel import SweepOrchestrator
from repro.obs import METRICS_SCHEMA_VERSION, MetricsRecorder, latency_summary

# Re-exported for back-compat: the percentile helper moved to
# repro.obs.summary where the metrics summarizer shares it.
from repro.obs import percentile as percentile  # noqa: PLC0414
from repro.service.jobs import (
    Job,
    JobNotFoundError,
    JobQueue,
    JobState,
    ServiceUnavailableError,
)
from repro.service.requests import SimRequest
from repro.service.scheduler import (
    InFlightIndex,
    MicroBatchScheduler,
    SchedulerStats,
    _pool_warm,
)


class SimulationService:
    """See the module docstring.

    Parameters
    ----------
    system / controller : the shared physics; defaults are the paper's
        10 mm system and the stock adaptive controller.
    store : optional storage backend — adds cross-batch (and
        cross-process) caching to the in-batch dedup.  Takes a
        :class:`~repro.storage.StoreBackend` instance *or* a backend
        URI string (``dir://...``, ``sqlite://...``, ``tiered://...``,
        ``mem://`` — see :func:`repro.storage.open_backend`).
    workers : orchestrator worker processes per engine call (leave at
        None for 1-CPU hosts; micro-batching, not multiprocessing, is
        the serving win).
    scheduler_workers : dispatch loops draining the shared queue.  >1
        grows the serving tier to a process pool (one pool process per
        worker) — bring a shareable backend (``sqlite://`` or
        ``dir://``) so cross-worker dedup and pool-side caching work.
    window / max_batch : micro-batch collection window (s) and cell
        budget per batch (see :class:`MicroBatchScheduler`).
    stream_chunk : cell budget per streamed result slice (see
        :class:`MicroBatchScheduler`).
    max_pending : job-queue bound — the backpressure point.
    max_jobs : finished jobs retained for ``/job/<id>`` polling before
        the oldest are forgotten.
    recorder : optional :class:`~repro.obs.recorder.MetricsRecorder`
        shared by the orchestrators and schedulers; default is a fresh
        in-memory recorder (rolling window only), which is what the
        ``/metrics`` endpoint serves.  Hand in a recorder with a JSONL
        sink (``repro serve --metrics-jsonl``) to persist the session.
    """

    def __init__(
        self,
        system=None,
        controller=None,
        store=None,
        workers=None,
        scheduler_workers=1,
        window=10e-3,
        max_batch=512,
        stream_chunk=256,
        max_pending=512,
        max_jobs=4096,
        latency_window=1024,
        recorder=None,
    ):
        if system is None:
            from repro import RemotePoweringSystem

            system = RemotePoweringSystem(distance=10e-3)
        if controller is None:
            from repro.core import AdaptivePowerController

            controller = AdaptivePowerController()
        if recorder is None:
            recorder = MetricsRecorder(label="service")
        if isinstance(store, str):
            from repro.storage import open_backend

            store = open_backend(store)
        self.system = system
        self.controller = controller
        self.store = store
        self.store_uri = None if store is None else getattr(store, "uri", None)
        self.recorder = recorder
        self.scheduler_workers = max(1, int(scheduler_workers))
        multi = self.scheduler_workers > 1
        self.inflight = InFlightIndex() if multi else None
        self.queue = JobQueue(max_pending=max_pending)
        self.schedulers = []
        for worker_id in range(self.scheduler_workers):
            orchestrator = SweepOrchestrator(
                workers=workers, store=store, recorder=recorder
            )
            self.schedulers.append(
                MicroBatchScheduler(
                    self.queue,
                    system,
                    controller,
                    orchestrator,
                    window=window,
                    max_batch=max_batch,
                    recorder=recorder,
                    worker_id=worker_id if multi else None,
                    inflight=self.inflight,
                    backend_uri=self.store_uri,
                    stream_chunk=stream_chunk,
                )
            )
        # Back-compat handles: the first worker is "the" scheduler /
        # orchestrator of a single-worker service.
        self.scheduler = self.schedulers[0]
        self.orchestrator = self.schedulers[0].orchestrator
        self.max_jobs = int(max_jobs)
        self.draining = False
        self._drain_rejected = 0
        self._jobs = OrderedDict()
        self._latencies = deque(maxlen=int(latency_window))
        self._tasks = []
        self._pool = None
        self._started_at = time.monotonic()
        self._submitted = 0
        self._cancelled = 0

    # -- lifecycle ------------------------------------------------------
    async def start(self):
        """Start the dispatch loops (idempotent).  On a multi-worker
        service this also creates and warms the shared process pool —
        the engine stack is imported (and the backend opened) in every
        pool process before the first request lands."""
        if self.scheduler_workers > 1 and self._pool is None:
            context = None
            for method in ("forkserver", "spawn"):
                try:
                    context = multiprocessing.get_context(method)
                    break
                except ValueError:
                    continue
            self._pool = ProcessPoolExecutor(
                max_workers=self.scheduler_workers, mp_context=context
            )
            for scheduler in self.schedulers:
                scheduler.pool = self._pool
            warmups = [
                asyncio.wrap_future(self._pool.submit(_pool_warm, self.store_uri))
                for _ in range(self.scheduler_workers)
            ]
            await asyncio.gather(*warmups)
        if not self._tasks or all(task.done() for task in self._tasks):
            self._tasks = [
                asyncio.create_task(
                    scheduler.run(), name=f"repro-scheduler-{k}"
                )
                for k, scheduler in enumerate(self.schedulers)
            ]
        return self

    async def stop(self):
        """Stop the dispatch loops; queued jobs stay queued (a restart
        resumes them)."""
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._tasks = []
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            for scheduler in self.schedulers:
                scheduler.pool = None

    async def __aenter__(self):
        return await self.start()

    async def __aexit__(self, *exc):
        await self.stop()

    async def drain(self, timeout=10.0):
        """Graceful-shutdown drain: stop admitting work (new submits
        raise :class:`ServiceUnavailableError` / HTTP 503), wait up to
        ``timeout`` seconds for the in-flight jobs to reach a terminal
        state, then cancel whatever is still queued.  Returns the
        drain accounting document (the ``session_end`` drain fields).
        """
        self.draining = True
        t0 = time.monotonic()
        pending = [job for job in self._jobs.values() if not job.state.terminal]
        deadline = t0 + max(0.0, float(timeout))
        while any(not job.state.terminal for job in pending):
            if time.monotonic() >= deadline:
                break
            await asyncio.sleep(0.02)
        cancelled = 0
        for job in pending:
            if job.state is JobState.QUEUED:
                self.queue.discard(job)
                job.finish(JobState.CANCELLED)
                self._cancelled += 1
                cancelled += 1
        clean = cancelled == 0 and all(job.state.terminal for job in pending)
        drained = sum(
            1
            for job in pending
            if job.state in (JobState.DONE, JobState.FAILED)
        )
        return {
            "drained_jobs": drained,
            "drain_elapsed_s": time.monotonic() - t0,
            "drain_clean": bool(clean),
            "rejected_during_drain": self._drain_rejected,
        }

    # -- the client surface --------------------------------------------
    def submit(self, request, priority=0):
        """Queue ``request`` (a :class:`SimRequest` or a payload dict)
        and return its :class:`Job`.

        A payload dict may carry an in-body ``"priority"`` field (the
        HTTP submit body format); it applies unless the ``priority``
        argument overrides it, so the in-process and HTTP paths
        prioritize identically.  Raises the typed validation errors
        for a bad payload,
        :class:`~repro.service.jobs.QueueFullError` when the bounded
        queue is at capacity — nothing is ever queued past the bound —
        and :class:`ServiceUnavailableError` while draining for
        shutdown.
        """
        if self.draining:
            self._drain_rejected += 1
            raise ServiceUnavailableError(
                "service is draining for shutdown; not accepting new jobs"
            )
        if not isinstance(request, SimRequest):
            if isinstance(request, dict) and "priority" in request:
                request = dict(request)
                embedded = request.pop("priority")
                if not isinstance(embedded, int) or isinstance(embedded, bool):
                    from repro.service.jobs import SimRequestError

                    raise SimRequestError(
                        f"priority must be an integer, got {embedded!r}"
                    )
                if not priority:
                    priority = embedded
            request = SimRequest.from_payload(request)
        job = Job(request=request, priority=int(priority))
        self.queue.push(job)  # may raise QueueFullError
        self._jobs[job.id] = job
        self._submitted += 1
        self._prune()
        return job

    def job(self, job_id):
        """The :class:`Job` for ``job_id`` (typed error when unknown,
        e.g. already pruned)."""
        try:
            return self._jobs[job_id]
        except KeyError:
            raise JobNotFoundError(f"unknown job {job_id!r}")

    async def result(self, job_id, timeout=None):
        """Wait for ``job_id`` and return its result document (raises
        the job's typed terminal error instead for failed/cancelled)."""
        job = self.job(job_id)
        result = await job.wait(timeout=timeout)
        self._note_latency(job)
        return result

    def cancel(self, job_id):
        """Cancel a *queued* job: its cells will never run.  Returns
        True when cancelled, False when the job already left the queue
        (running or terminal) — cancellation is never retroactive."""
        job = self.job(job_id)
        if job.state is not JobState.QUEUED:
            return False
        self.queue.discard(job)
        job.finish(JobState.CANCELLED)
        self._cancelled += 1
        return True

    # -- accounting -----------------------------------------------------
    def _note_latency(self, job):
        if (
            job.latency is not None
            and job.state is JobState.DONE
            and not getattr(job, "_latency_noted", False)
        ):
            job._latency_noted = True
            self._latencies.append(job.latency)

    def _prune(self):
        """Forget the oldest *terminal* jobs past the retention bound
        (live jobs are never pruned)."""
        if len(self._jobs) <= self.max_jobs:
            return
        for job_id in list(self._jobs):
            if len(self._jobs) <= self.max_jobs:
                break
            if self._jobs[job_id].state.terminal:
                del self._jobs[job_id]

    def health(self):
        """The ``/healthz`` document.

        Always carries ``ok`` / ``draining`` / ``queue_depth`` /
        ``scheduler_workers``; with a storage backend attached it adds
        the backend health probe (``backend`` sub-document: probe ok,
        writable, entry count) and ``ok`` goes False — HTTP 503 — when
        the probe fails.  Each probe is emitted as a ``store_backend``
        metrics event.
        """
        doc = {
            "ok": True,
            "draining": self.draining,
            "queue_depth": self.queue.depth,
            "scheduler_workers": self.scheduler_workers,
        }
        if self.store is not None:
            backend = self.store.health()
            doc["backend"] = backend
            doc["ok"] = bool(backend.get("ok", False))
            if self.recorder is not None:
                event = {
                    "backend": backend["backend"],
                    "ok": bool(backend["ok"]),
                    "writable": bool(backend["writable"]),
                    "entries": int(backend["entries"]),
                    "elapsed_s": backend["elapsed_s"],
                }
                if backend.get("error") is not None:
                    event["error"] = str(backend["error"])
                self.recorder.emit("store_backend", **event)
        return doc

    def stats(self):
        """The ``/stats`` document: queue, latency percentiles, batch
        sizes, dedup/cache rates (merged over every scheduler worker).

        The ``latency`` block is the explicit empty document
        ``{"count": 0}`` before any job completes — never a set of
        silent ``None`` percentiles.
        """
        for job in self._jobs.values():
            self._note_latency(job)
        states = {state.value: 0 for state in JobState}
        for job in self._jobs.values():
            states[job.state.value] += 1
        store_stats = self.store.stats.as_dict() if self.store is not None else None
        return {
            "uptime_s": time.monotonic() - self._started_at,
            "submitted": self._submitted,
            "rejected": self.queue.rejected,
            "cancelled": self._cancelled,
            "queue_depth": self.queue.depth,
            "max_pending": self.queue.max_pending,
            "jobs": states,
            "latency": latency_summary(self._latencies),
            "batching": SchedulerStats.merged(
                [scheduler.stats for scheduler in self.schedulers]
            ),
            "store": store_stats,
            "store_backend": None if self.store is None else {
                "kind": getattr(self.store, "kind", None),
                "uri": self.store_uri,
            },
            "scheduler_workers": self.scheduler_workers,
            "draining": self.draining,
            "window_s": self.scheduler.window,
            "max_batch": self.scheduler.max_batch,
        }

    def metrics(self):
        """The ``/metrics`` document: percentile/rate summary of the
        recorder's in-memory event window (see
        :func:`repro.obs.summary.summarize_events`)."""
        return {
            "session": self.recorder.session,
            "schema": METRICS_SCHEMA_VERSION,
            "events_emitted": self.recorder.n_emitted,
            "jsonl_path": self.recorder.jsonl_path,
            "summary": self.recorder.summary(),
        }

    def metrics_events(self):
        """The raw in-memory event window (oldest first) — every
        document is schema-valid JSON-safe flat data."""
        return self.recorder.events()
