"""The asyncio simulation service: queue + scheduler + accounting.

:class:`SimulationService` is the in-process serving object the HTTP
front-end (:mod:`repro.service.http`) and the in-process
:class:`~repro.service.client.ServiceClient` both drive.  One instance
owns one physics configuration (system + controller), one bounded
:class:`~repro.service.jobs.JobQueue`, one
:class:`~repro.service.scheduler.MicroBatchScheduler`, and the job
registry with latency accounting.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict, deque

from repro.engine.parallel import SweepOrchestrator
from repro.obs import METRICS_SCHEMA_VERSION, MetricsRecorder, latency_summary

# Re-exported for back-compat: the percentile helper moved to
# repro.obs.summary where the metrics summarizer shares it.
from repro.obs import percentile as percentile  # noqa: PLC0414
from repro.service.jobs import (
    Job,
    JobNotFoundError,
    JobQueue,
    JobState,
)
from repro.service.requests import SimRequest
from repro.service.scheduler import MicroBatchScheduler


class SimulationService:
    """See the module docstring.

    Parameters
    ----------
    system / controller : the shared physics; defaults are the paper's
        10 mm system and the stock adaptive controller.
    store : optional :class:`~repro.engine.store.ResultStore` — adds
        cross-batch (and cross-process) caching to the in-batch dedup.
    workers : orchestrator worker processes (leave at None for 1-CPU
        hosts; micro-batching, not multiprocessing, is the serving win).
    window / max_batch : micro-batch collection window (s) and cell
        budget per batch (see :class:`MicroBatchScheduler`).
    max_pending : job-queue bound — the backpressure point.
    max_jobs : finished jobs retained for ``/job/<id>`` polling before
        the oldest are forgotten.
    recorder : optional :class:`~repro.obs.recorder.MetricsRecorder`
        shared by the orchestrator and scheduler; default is a fresh
        in-memory recorder (rolling window only), which is what the
        ``/metrics`` endpoint serves.  Hand in a recorder with a JSONL
        sink (``repro serve --metrics-jsonl``) to persist the session.
    """

    def __init__(
        self,
        system=None,
        controller=None,
        store=None,
        workers=None,
        window=10e-3,
        max_batch=512,
        max_pending=512,
        max_jobs=4096,
        latency_window=1024,
        recorder=None,
    ):
        if system is None:
            from repro import RemotePoweringSystem

            system = RemotePoweringSystem(distance=10e-3)
        if controller is None:
            from repro.core import AdaptivePowerController

            controller = AdaptivePowerController()
        if recorder is None:
            recorder = MetricsRecorder(label="service")
        self.system = system
        self.controller = controller
        self.store = store
        self.recorder = recorder
        self.orchestrator = SweepOrchestrator(
            workers=workers, store=store, recorder=recorder
        )
        self.queue = JobQueue(max_pending=max_pending)
        self.scheduler = MicroBatchScheduler(
            self.queue,
            system,
            controller,
            self.orchestrator,
            window=window,
            max_batch=max_batch,
            recorder=recorder,
        )
        self.max_jobs = int(max_jobs)
        self._jobs = OrderedDict()
        self._latencies = deque(maxlen=int(latency_window))
        self._task = None
        self._started_at = time.monotonic()
        self._submitted = 0
        self._cancelled = 0

    # -- lifecycle ------------------------------------------------------
    async def start(self):
        """Start the dispatch loop (idempotent)."""
        if self._task is None or self._task.done():
            self._task = asyncio.create_task(
                self.scheduler.run(), name="repro-scheduler"
            )
        return self

    async def stop(self):
        """Stop the dispatch loop; queued jobs stay queued (a restart
        resumes them)."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    async def __aenter__(self):
        return await self.start()

    async def __aexit__(self, *exc):
        await self.stop()

    # -- the client surface --------------------------------------------
    def submit(self, request, priority=0):
        """Queue ``request`` (a :class:`SimRequest` or a payload dict)
        and return its :class:`Job`.

        A payload dict may carry an in-body ``"priority"`` field (the
        HTTP submit body format); it applies unless the ``priority``
        argument overrides it, so the in-process and HTTP paths
        prioritize identically.  Raises the typed validation errors
        for a bad payload and
        :class:`~repro.service.jobs.QueueFullError` when the bounded
        queue is at capacity — nothing is ever queued past the bound.
        """
        if not isinstance(request, SimRequest):
            if isinstance(request, dict) and "priority" in request:
                request = dict(request)
                embedded = request.pop("priority")
                if not isinstance(embedded, int) or isinstance(embedded, bool):
                    from repro.service.jobs import SimRequestError

                    raise SimRequestError(
                        f"priority must be an integer, got {embedded!r}"
                    )
                if not priority:
                    priority = embedded
            request = SimRequest.from_payload(request)
        job = Job(request=request, priority=int(priority))
        self.queue.push(job)  # may raise QueueFullError
        self._jobs[job.id] = job
        self._submitted += 1
        self._prune()
        return job

    def job(self, job_id):
        """The :class:`Job` for ``job_id`` (typed error when unknown,
        e.g. already pruned)."""
        try:
            return self._jobs[job_id]
        except KeyError:
            raise JobNotFoundError(f"unknown job {job_id!r}")

    async def result(self, job_id, timeout=None):
        """Wait for ``job_id`` and return its result document (raises
        the job's typed terminal error instead for failed/cancelled)."""
        job = self.job(job_id)
        result = await job.wait(timeout=timeout)
        self._note_latency(job)
        return result

    def cancel(self, job_id):
        """Cancel a *queued* job: its cells will never run.  Returns
        True when cancelled, False when the job already left the queue
        (running or terminal) — cancellation is never retroactive."""
        job = self.job(job_id)
        if job.state is not JobState.QUEUED:
            return False
        self.queue.discard(job)
        job.finish(JobState.CANCELLED)
        self._cancelled += 1
        return True

    # -- accounting -----------------------------------------------------
    def _note_latency(self, job):
        if (
            job.latency is not None
            and job.state is JobState.DONE
            and not getattr(job, "_latency_noted", False)
        ):
            job._latency_noted = True
            self._latencies.append(job.latency)

    def _prune(self):
        """Forget the oldest *terminal* jobs past the retention bound
        (live jobs are never pruned)."""
        if len(self._jobs) <= self.max_jobs:
            return
        for job_id in list(self._jobs):
            if len(self._jobs) <= self.max_jobs:
                break
            if self._jobs[job_id].state.terminal:
                del self._jobs[job_id]

    def stats(self):
        """The ``/stats`` document: queue, latency percentiles, batch
        sizes, dedup/cache rates.

        The ``latency`` block is the explicit empty document
        ``{"count": 0}`` before any job completes — never a set of
        silent ``None`` percentiles.
        """
        for job in self._jobs.values():
            self._note_latency(job)
        states = {state.value: 0 for state in JobState}
        for job in self._jobs.values():
            states[job.state.value] += 1
        store_stats = self.store.stats.as_dict() if self.store is not None else None
        return {
            "uptime_s": time.monotonic() - self._started_at,
            "submitted": self._submitted,
            "rejected": self.queue.rejected,
            "cancelled": self._cancelled,
            "queue_depth": self.queue.depth,
            "max_pending": self.queue.max_pending,
            "jobs": states,
            "latency": latency_summary(self._latencies),
            "batching": self.scheduler.stats.as_dict(),
            "store": store_stats,
            "window_s": self.scheduler.window,
            "max_batch": self.scheduler.max_batch,
        }

    def metrics(self):
        """The ``/metrics`` document: percentile/rate summary of the
        recorder's in-memory event window (see
        :func:`repro.obs.summary.summarize_events`)."""
        return {
            "session": self.recorder.session,
            "schema": METRICS_SCHEMA_VERSION,
            "events_emitted": self.recorder.n_emitted,
            "jsonl_path": self.recorder.jsonl_path,
            "summary": self.recorder.summary(),
        }

    def metrics_events(self):
        """The raw in-memory event window (oldest first) — every
        document is schema-valid JSON-safe flat data."""
        return self.recorder.events()
