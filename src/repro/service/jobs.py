"""Jobs, job states, typed service errors, and the bounded priority
queue.

The queue is the backpressure point of the whole service: ``push``
raises :class:`QueueFullError` the moment the configured bound is hit,
so overload surfaces as a clean typed rejection (HTTP 429 at the
front-end) instead of an unboundedly growing heap.  Cancellation is by
lazy deletion — a cancelled job's heap entry stays behind and is
skipped on pop, so cancel is O(1) and a cancelled job's cells are
never dispatched.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import time
import uuid
from dataclasses import dataclass, field
from enum import Enum


class ServiceError(Exception):
    """Base of every typed service-layer error; carries the HTTP
    mapping so the front-end never invents status codes ad hoc."""

    http_status = 500
    code = "service_error"


class SimRequestError(ServiceError, ValueError):
    """A request payload that cannot be turned into a valid
    :class:`~repro.service.requests.SimRequest`."""

    http_status = 400
    code = "bad_request"


class QueueFullError(ServiceError):
    """The bounded job queue is at capacity; the submit was rejected
    (nothing was enqueued — retry later or shed load)."""

    http_status = 429
    code = "queue_full"


class ServiceUnavailableError(ServiceError):
    """The service is draining for shutdown (or otherwise refusing
    work); the submit was rejected and will not succeed on retry
    against this instance."""

    http_status = 503
    code = "unavailable"


class JobNotFoundError(ServiceError):
    http_status = 404
    code = "job_not_found"


class JobCancelledError(ServiceError):
    """Awaited a job that was cancelled before it ran."""

    http_status = 409
    code = "job_cancelled"


class JobFailedError(ServiceError):
    """Awaited a job whose batch raised inside the engine."""

    http_status = 500
    code = "job_failed"


class JobState(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self):
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


@dataclass
class Job:
    """One submitted :class:`~repro.service.requests.SimRequest` moving
    through the queue -> micro-batch -> result lifecycle."""

    request: object
    priority: int = 0
    id: str = field(default_factory=lambda: uuid.uuid4().hex[:12])
    state: JobState = JobState.QUEUED
    submitted_at: float = field(default_factory=time.monotonic)
    started_at: float | None = None
    finished_at: float | None = None
    result: dict | None = None
    error: str | None = None
    #: Cells this job shared with other requests in its batch (computed
    #: once by another job's — or a cached — cell, not by this one).
    shared_cells: int = 0
    in_queue: bool = False
    #: Streamed partial-result documents (appended by the scheduler as
    #: slices of the job's cells resolve; consumed by iter_chunks).
    chunks: list = field(default_factory=list, repr=False)
    _done: asyncio.Event = field(default_factory=asyncio.Event, repr=False)
    _chunk_event: asyncio.Event = field(default_factory=asyncio.Event, repr=False)

    @property
    def latency(self):
        """Submit-to-finish wall time, or None while in flight."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def finish(self, state, result=None, error=None):
        self.state = state
        self.result = result
        self.error = error
        self.finished_at = time.monotonic()
        self._done.set()
        self._chunk_event.set()  # wake streamers: terminal, no more chunks

    def add_chunk(self, doc):
        """Publish one streamed partial-result document (event-loop
        only — the scheduler calls this as slices of the job's cells
        resolve)."""
        self.chunks.append(doc)
        self._chunk_event.set()

    async def iter_chunks(self):
        """Yield streamed chunk documents as they are published, then
        return once the job is terminal.  Chunks already published
        before iteration starts are replayed first, so a late consumer
        sees the identical sequence."""
        seen = 0
        while True:
            while seen < len(self.chunks):
                yield self.chunks[seen]
                seen += 1
            if self.state.terminal:
                return
            self._chunk_event.clear()
            # Re-check after the clear: a publish (or finish) between
            # the len() check and the clear must not be slept through.
            if seen < len(self.chunks) or self.state.terminal:
                continue
            await self._chunk_event.wait()

    async def wait(self, timeout=None):
        """Block until the job is terminal, then return its result.

        Raises :class:`JobCancelledError` / :class:`JobFailedError`
        for the non-DONE terminal states (and ``TimeoutError`` if
        ``timeout`` elapses first).
        """
        if timeout is None:
            await self._done.wait()
        else:
            await asyncio.wait_for(self._done.wait(), timeout)
        if self.state is JobState.CANCELLED:
            raise JobCancelledError(f"job {self.id} was cancelled")
        if self.state is JobState.FAILED:
            raise JobFailedError(f"job {self.id} failed: {self.error}")
        return self.result

    def snapshot(self, include_result=True):
        """The job as a JSON-able status document."""
        doc = {
            "job_id": self.id,
            "state": self.state.value,
            "priority": self.priority,
            "kind": self.request.kind,
            "n_cells": self.request.n_cells,
            "shared_cells": self.shared_cells,
            "latency_s": self.latency,
            "chunks_streamed": len(self.chunks),
        }
        if self.error is not None:
            doc["error"] = self.error
        if include_result and self.state is JobState.DONE:
            doc["result"] = self.result
        return doc


class JobQueue:
    """Bounded priority queue of :class:`Job` (higher priority pops
    first; FIFO within a priority level)."""

    def __init__(self, max_pending=512):
        if int(max_pending) < 1:
            raise ValueError("max_pending must be >= 1")
        self.max_pending = int(max_pending)
        self._heap = []
        self._seq = itertools.count()
        self._size = 0  # live (non-cancelled) queued jobs
        self._ghosts = 0  # cancelled entries awaiting removal
        self._event = asyncio.Event()
        self.rejected = 0

    @property
    def depth(self):
        return self._size

    def push(self, job):
        """Enqueue ``job`` or raise :class:`QueueFullError` — the
        queue never grows past ``max_pending`` live jobs."""
        if self._size >= self.max_pending:
            self.rejected += 1
            raise QueueFullError(
                f"queue full ({self._size}/{self.max_pending} jobs "
                f"pending); retry later"
            )
        heapq.heappush(self._heap, (-int(job.priority), next(self._seq), job))
        job.in_queue = True
        self._size += 1
        self._event.set()

    def requeue(self, job):
        """Push back a job the scheduler popped but could not finish
        (shutdown mid-batch).  Bypasses the admission bound — the job
        already held a slot when it was admitted, so re-adding it must
        never fail."""
        heapq.heappush(self._heap, (-int(job.priority), next(self._seq), job))
        job.in_queue = True
        self._size += 1
        self._event.set()

    def discard(self, job):
        """Account for a job cancelled while queued (lazy deletion —
        its heap entry is skipped on pop).  When ghosts pile up faster
        than pops retire them (a submit+cancel churn pattern under
        steady higher-priority traffic), the heap is compacted so it
        stays proportional to the live size."""
        if job.in_queue:
            job.in_queue = False
            self._size -= 1
            self._ghosts += 1
            if self._ghosts > max(64, self._size):
                self._compact()

    def _compact(self):
        """Rebuild the heap without ghost entries (O(live size))."""
        self._heap = [entry for entry in self._heap if entry[2].in_queue]
        heapq.heapify(self._heap)
        self._ghosts = 0

    def pop_nowait(self):
        """The highest-priority live job, or None."""
        while self._heap:
            _, _, job = heapq.heappop(self._heap)
            if not job.in_queue:  # cancelled: skip the ghost
                self._ghosts -= 1
                continue
            job.in_queue = False
            self._size -= 1
            return job
        self._event.clear()
        return None

    async def pop(self, timeout=None):
        """Wait up to ``timeout`` (forever when None) for a live job;
        None on timeout."""
        while True:
            job = self.pop_nowait()
            if job is not None:
                return job
            if timeout is not None and timeout <= 0:
                return None
            t0 = time.monotonic()
            try:
                if timeout is None:
                    await self._event.wait()
                else:
                    await asyncio.wait_for(self._event.wait(), timeout)
            except asyncio.TimeoutError:
                return None
            if timeout is not None:
                timeout -= time.monotonic() - t0
