"""Dependency-free JSON-over-HTTP front-end (asyncio streams).

A deliberately small HTTP/1.1 subset — enough for curl, the
:class:`~repro.service.client.HttpServiceClient`, and the CI smoke
job; every response is JSON and every connection is one
request/response (``Connection: close``).

Routes
------
* ``POST /submit``          — submit a request body (optional
  ``"priority"`` field); 200 with ``{"job_id", "state"}``, 400 for
  malformed/invalid requests, 429 when the bounded queue is full.
* ``GET /job/<id>``         — job status; includes ``"result"`` once
  done; 404 for unknown (or pruned) ids.
* ``POST /job/<id>/cancel`` — cancel a queued job;
  ``{"cancelled": bool}`` (False: it already left the queue).
* ``GET /job/<id>/stream``  — newline-delimited JSON stream of the
  job's result chunks as the scheduler publishes them (one chunk
  document per line, replayed from the start for late subscribers),
  terminated by an ``{"event": "end", "state": ...}`` line once the
  job is terminal.  The only non-buffered route: chunks are written
  as they land, so a client renders partial results while the tail
  of the batch still computes.
* ``GET /stats``            — queue depth, latency percentiles, batch
  sizes, dedup/cache rates.
* ``GET /metrics``          — percentile/rate summary of the service's
  rolling metrics-event window.
* ``GET /metrics/events``   — the raw event window (schema-valid flat
  JSON documents, oldest first).
* ``GET /healthz``          — liveness + storage-backend health probe
  (503 with the same document when the backend probe fails — or while
  the service drains for shutdown new submits 503 too).
"""

from __future__ import annotations

import asyncio
import json

from repro.engine.scenario import ScenarioAxisError
from repro.service.jobs import ServiceError

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    408: "Request Timeout",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Request bodies past this size are rejected before parsing.
MAX_BODY_BYTES = 8 * 1024 * 1024
#: Header lines per request; more is a stalling or hostile client.
MAX_HEADERS = 100


class _StreamJob:
    """Route sentinel: stream this job's chunks instead of buffering
    one JSON response."""

    def __init__(self, job):
        self.job = job


class ServiceHTTPServer:
    """Serve one :class:`~repro.service.service.SimulationService`
    over HTTP on ``host:port`` (port 0 picks a free port).

    ``read_timeout`` bounds how long one connection may take to
    deliver (and have routed) its request — a stalled or silent
    client gets a 408 and its handler task is released, so idle
    connections can never accumulate past the queue's backpressure.
    """

    def __init__(self, service, host="127.0.0.1", port=8765, read_timeout=30.0):
        self.service = service
        self.host = host
        self.port = int(port)
        self.read_timeout = float(read_timeout)
        self._server = None

    async def start(self):
        """Bind and start accepting; returns (host, actual port)."""
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    async def serve_forever(self):
        async with self._server:
            await self._server.serve_forever()

    async def stop(self):
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- one connection = one request/response -------------------------
    async def _handle(self, reader, writer):
        try:
            response = await asyncio.wait_for(
                self._respond_to(reader), self.read_timeout
            )
            if isinstance(response, _StreamJob):
                # The read_timeout bounded receiving + routing the
                # request; the stream itself runs as long as the job.
                await self._stream(response.job, writer)
                return
            status, payload = response
        except asyncio.TimeoutError:
            status, payload = 408, {
                "error": "timeout",
                "message": f"request not received within {self.read_timeout:g} s",
            }
        except (
            ValueError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ) as exc:
            # Oversized header line / truncated body: client error.
            status, payload = 400, {"error": "bad_request", "message": str(exc)}
        except Exception as exc:  # noqa: BLE001 - never kill the server
            status, payload = 500, {
                "error": "internal",
                "message": f"{type(exc).__name__}: {exc}",
            }
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("ascii")
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _stream(self, job, writer):
        """Write the job's chunk documents as NDJSON, one line per
        chunk as it is published, ending with a terminal-state line.
        A client hanging up mid-stream just ends this handler — the
        job itself is unaffected."""
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Connection: close\r\n\r\n"
        ).encode("ascii")
        try:
            writer.write(head)
            await writer.drain()
            async for chunk in job.iter_chunks():
                writer.write(json.dumps(chunk).encode("utf-8") + b"\n")
                await writer.drain()
            end = {
                "event": "end",
                "state": job.state.value,
                "chunks": len(job.chunks),
            }
            if job.error is not None:
                end["error"] = job.error
            writer.write(json.dumps(end).encode("utf-8") + b"\n")
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _respond_to(self, reader):
        request_line = (await reader.readline()).decode("latin-1")
        parts = request_line.split()
        if len(parts) < 2:
            return 400, {"error": "bad_request", "message": "malformed request line"}
        method, path = parts[0].upper(), parts[1]
        length = 0
        for _ in range(MAX_HEADERS + 1):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    length = -1
                if length < 0:
                    return 400, {
                        "error": "bad_request",
                        "message": "bad Content-Length",
                    }
        else:
            return 400, {
                "error": "bad_request",
                "message": f"more than {MAX_HEADERS} headers",
            }
        if length > MAX_BODY_BYTES:
            return 400, {
                "error": "bad_request",
                "message": f"body exceeds {MAX_BODY_BYTES} bytes",
            }
        body = await reader.readexactly(length) if length else b""
        try:
            return await self._route(method, path, body)
        except ScenarioAxisError as exc:
            return 400, {"error": "bad_axis", "message": str(exc)}
        except ServiceError as exc:
            return exc.http_status, {"error": exc.code, "message": str(exc)}

    async def _route(self, method, path, body):
        service = self.service
        if method == "POST" and path == "/submit":
            try:
                payload = json.loads(body.decode("utf-8")) if body else {}
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                return 400, {"error": "bad_json", "message": str(exc)}
            # An in-body "priority" field is applied by service.submit
            # itself, so HTTP and in-process submits are one path.
            job = service.submit(payload)
            return 200, {
                "job_id": job.id,
                "state": job.state.value,
                "n_cells": job.request.n_cells,
            }
        if path.startswith("/job/"):
            rest = path[len("/job/") :]
            if method == "POST" and rest.endswith("/cancel"):
                job_id = rest[: -len("/cancel")].rstrip("/")
                cancelled = service.cancel(job_id)
                return 200, {
                    "job_id": job_id,
                    "cancelled": cancelled,
                    "state": service.job(job_id).state.value,
                }
            if method == "GET" and rest.endswith("/stream"):
                job_id = rest[: -len("/stream")].rstrip("/")
                return _StreamJob(service.job(job_id))
            if method == "GET":
                return 200, service.job(rest).snapshot()
        if method == "GET" and path == "/stats":
            return 200, service.stats()
        if method == "GET" and path == "/metrics":
            return 200, service.metrics()
        if method == "GET" and path == "/metrics/events":
            return 200, {"events": service.metrics_events()}
        if method == "GET" and path == "/healthz":
            doc = service.health()
            return (200 if doc.get("ok") else 503), doc
        return 404, {"error": "not_found", "message": f"no route for {method} {path}"}
