"""The simulation service layer: many concurrent clients, one engine.

* :mod:`repro.service.requests`  — :class:`SimRequest`: the typed
  request model (sweep / transient / battery / montecarlo studies);
* :mod:`repro.service.jobs`      — :class:`Job` / :class:`JobQueue`:
  priorities, job states, bounded backpressure, typed errors;
* :mod:`repro.service.scheduler` — :class:`MicroBatchScheduler`:
  coalesces co-arriving requests into one vectorized engine batch and
  deduplicates identical cells across clients by content address;
* :mod:`repro.service.service`   — :class:`SimulationService`: the
  serving facade (start/stop, submit, result, cancel, stats);
* :mod:`repro.service.http`      — :class:`ServiceHTTPServer`:
  stdlib JSON-over-HTTP front-end (``repro serve``);
* :mod:`repro.service.client`    — :class:`ServiceClient` (in-process)
  / :class:`HttpServiceClient` / :class:`LoadGenerator`.
"""

from repro.service.client import (
    HttpServiceClient,
    LoadGenerator,
    ServiceClient,
)
from repro.service.http import ServiceHTTPServer
from repro.service.jobs import (
    Job,
    JobCancelledError,
    JobFailedError,
    JobNotFoundError,
    JobQueue,
    JobState,
    QueueFullError,
    ServiceError,
    ServiceUnavailableError,
    SimRequestError,
)
from repro.service.requests import SimRequest
from repro.service.scheduler import (
    InFlightIndex,
    MicroBatchScheduler,
    SchedulerStats,
)
from repro.service.service import SimulationService, percentile

__all__ = [
    "HttpServiceClient",
    "LoadGenerator",
    "ServiceClient",
    "ServiceHTTPServer",
    "Job",
    "JobCancelledError",
    "JobFailedError",
    "JobNotFoundError",
    "JobQueue",
    "JobState",
    "QueueFullError",
    "ServiceError",
    "ServiceUnavailableError",
    "SimRequestError",
    "SimRequest",
    "InFlightIndex",
    "MicroBatchScheduler",
    "SchedulerStats",
    "SimulationService",
    "percentile",
]
