"""Typed simulation requests: what a service client can ask for.

A :class:`SimRequest` is one of four study kinds, all expressed over
the engine's own axes so validation is exactly the existing
:class:`~repro.engine.scenario.ScenarioAxisError` machinery:

* ``sweep``      — adaptive-power control sweep over scenario axes
                   (:meth:`SweepOrchestrator.run_control`);
* ``transient``  — rail-envelope integration at constant input power
                   (:meth:`SweepOrchestrator.run_envelope`);
* ``battery``    — charge-time / battery-life study
                   (:meth:`SweepOrchestrator.charge_times`);
* ``montecarlo`` — charge-time yield under component spreads
                   (:meth:`SweepOrchestrator.run_montecarlo`, with
                   deterministic seeding so identical requests are
                   identical results);
* ``spice``      — carrier-resolved circuit study over netlist-template
                   axes (:meth:`SweepOrchestrator.run_spice`, the
                   lockstep-batched adaptive transient backend).

Every request knows its engine-parameter *group key* (requests with
the same key can run as one coalesced batch) and its per-cell *content
keys* (the very :func:`~repro.engine.store.canonical_key` addresses
the :class:`~repro.engine.store.ResultStore` files results under), so
the scheduler can deduplicate identical cells across clients.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field

from repro.engine.parallel import (
    charge_cell_keys,
    control_cell_keys,
    envelope_cell_keys,
    spice_cell_keys,
)
from repro.engine.scenario import ScenarioAxisError, ScenarioBatch, SpiceBatch
from repro.engine.store import canonical_key
from repro.service.jobs import SimRequestError

KINDS = ("sweep", "transient", "battery", "montecarlo", "spice")

#: Output-grid length of a served spice cell (fixed server-side so the
#: response shape — and the content address — is one per circuit cell).
SPICE_N_POINTS = 256

#: Hard per-request bounds: a single request may not ask for more cells
#: or a longer horizon than this — oversized studies must be split, so
#: one client cannot monopolise a batch window.
MAX_CELLS = 1024
MAX_T_STOP = 1.0
MAX_SAMPLES = 4096
#: Integration-step budget per cell (t_stop/dt for transient, limit/dt
#: for battery search; the stock battery defaults are 1e6 steps) —
#: without it a tiny dt makes one request allocate unbounded arrays /
#: pin the dispatch thread indefinitely.
MAX_STEPS = 2_000_000
#: Total trace values a transient response may carry (cells x steps).
MAX_TRACE_VALUES = 2_000_000

#: Spread names a montecarlo request may vary (the charge-time kernel's
#: inputs).
MC_PARAMS = ("c_out", "i_load")

#: The payload fields each kind actually consumes.  from_payload
#: rejects fields outside its kind's set — a montecarlo request
#: carrying "axes" (or a sweep carrying "spreads") is a client
#: misunderstanding that must error, not silently drop input.
KIND_FIELDS = {
    "sweep": {"axes", "t_stop"},
    "transient": {"axes", "t_stop", "dt", "p_in"},
    "battery": {"axes", "p_in", "v_target", "dt", "limit"},
    "montecarlo": {"spreads", "n_samples", "seed", "p_in", "v_target", "dt", "limit"},
    "spice": {"axes", "t_stop", "dt", "method", "matrix"},
}


def _positive(payload_value, name, maximum=None):
    try:
        value = float(payload_value)
    except (TypeError, ValueError):
        raise SimRequestError(f"{name} must be a number, got {payload_value!r}")
    if not value > 0.0:
        raise SimRequestError(f"{name} must be positive, got {value}")
    if maximum is not None and value > maximum:
        raise SimRequestError(f"{name} must be <= {maximum}, got {value}")
    return value


def _spread_doc(spread):
    """One ParameterSpread as plain data — the single source for both
    the montecarlo content key and the submit-payload round trip."""
    return {
        "name": spread.name,
        "nominal": spread.nominal,
        "sigma": spread.sigma,
        "distribution": spread.distribution,
        "relative": spread.relative,
    }


def mc_charge_kernel(params, p_in, v_target, dt, limit):
    """Picklable Monte-Carlo kernel: per-sample charge time under
    ``c_out`` / ``i_load`` spreads (missing spreads take the paper's
    nominal rectifier / low-power load)."""
    import numpy as np

    from repro.engine.scenario import Scenario
    from repro.power.envelope import RectifierEnvelopeModel

    n = len(next(iter(params.values())))
    nominal = RectifierEnvelopeModel()
    c_out = params.get("c_out", np.full(n, nominal.c_out))
    i_load = params.get("i_load", np.full(n, 352e-6))
    scenarios = [
        Scenario(rectifier=RectifierEnvelopeModel(c_out=c), i_load=i)
        for c, i in zip(c_out, i_load)
    ]
    batch = ScenarioBatch(scenarios)
    return {"t_charge": batch.charge_times(p_in, v_target, dt=dt, limit=limit)}


@dataclass(frozen=True)
class SimRequest:
    """One validated service request (see the module docstring for the
    four kinds).  ``axes`` maps :class:`~repro.engine.scenario.Scenario`
    field names to value lists — SI units, exactly as the engine takes
    them — and is expanded to the cartesian cell grid at construction,
    so an invalid request never reaches the queue."""

    kind: str
    axes: dict = field(default_factory=dict)
    t_stop: float = 60e-3  # sweep / transient / spice horizon (s)
    dt: float = 1e-6  # transient / battery / spice step (s)
    p_in: float = 5e-3  # transient / battery / mc power (W)
    v_target: float = 2.75  # battery / mc target rail (V)
    limit: float = 1.0  # battery / mc search horizon (s)
    n_samples: int = 128  # mc sample count
    seed: int = 0  # mc master seed
    spreads: tuple = ()  # mc ParameterSpread specs
    method: str = "adaptive"  # spice integrator backend
    matrix: str = "auto"  # spice linear-solver strategy

    def __post_init__(self):
        if self.kind not in KINDS:
            raise SimRequestError(
                f"unknown request kind {self.kind!r}; known kinds: {list(KINDS)}"
            )
        object.__setattr__(
            self, "t_stop", _positive(self.t_stop, "t_stop", MAX_T_STOP)
        )
        object.__setattr__(self, "dt", _positive(self.dt, "dt"))
        object.__setattr__(self, "p_in", _positive(self.p_in, "p_in"))
        object.__setattr__(self, "v_target", _positive(self.v_target, "v_target"))
        object.__setattr__(self, "limit", _positive(self.limit, "limit", MAX_T_STOP))
        if self.kind == "montecarlo":
            if self.axes:
                raise SimRequestError(
                    "a montecarlo request varies 'spreads', not 'axes' — the axes would be silently ignored"
                )
            object.__setattr__(self, "_scenarios", None)
            self._init_montecarlo()
            return
        if self.spreads:
            raise SimRequestError(
                f"'spreads' does not apply to a {self.kind!r} request"
            )
        if not self.axes:
            raise SimRequestError(f"a {self.kind!r} request needs at least one axis")
        if self.kind == "spice":
            self._init_spice()
            return
        # from_axes is the validation: unknown axis names and invalid
        # values raise a typed ScenarioAxisError naming the axis.
        batch = ScenarioBatch.from_axes(**dict(self.axes))
        if len(batch) > MAX_CELLS:
            raise SimRequestError(
                f"request asks for {len(batch)} cells; the per-request bound is {MAX_CELLS} — split the study"
            )
        if self.kind == "transient":
            steps = self.t_stop / self.dt
            if steps > MAX_STEPS:
                raise SimRequestError(
                    f"t_stop/dt is {steps:.3g} integration steps per cell; the bound is {MAX_STEPS} — raise dt or shorten t_stop"
                )
            if len(batch) * steps > MAX_TRACE_VALUES:
                raise SimRequestError(
                    f"{len(batch)} cells x {steps:.3g} steps exceeds the {MAX_TRACE_VALUES} response-trace budget — split the study"
                )
        if self.kind == "battery" and self.limit / self.dt > MAX_STEPS:
            raise SimRequestError(
                f"limit/dt is {self.limit / self.dt:.3g} search steps per cell; the bound is {MAX_STEPS} — raise dt or lower limit"
            )
        object.__setattr__(self, "_scenarios", batch.scenarios)

    def _init_spice(self):
        from repro.spice.assembler import MATRIX_MODES
        from repro.spice.transient import METHODS

        if self.method not in METHODS:
            raise SimRequestError(
                f"unknown spice method {self.method!r}; known methods: {list(METHODS)}"
            )
        if self.matrix not in MATRIX_MODES:
            raise SimRequestError(
                f"unknown spice matrix mode {self.matrix!r}; known modes: "
                f"{list(MATRIX_MODES)}"
            )
        if self.matrix == "sparse" and self.method != "adaptive":
            raise SimRequestError(
                f"matrix='sparse' requires the 'adaptive' method; the "
                f"fixed-step {self.method!r} backend is the dense parity "
                f"reference"
            )
        # from_axes is the validation: unknown axis names and invalid
        # values raise a typed ScenarioAxisError naming the axis.
        batch = SpiceBatch.from_axes(**dict(self.axes))
        if len(batch) > MAX_CELLS:
            raise SimRequestError(
                f"request asks for {len(batch)} circuit cells; the per-request bound is {MAX_CELLS} — split the study"
            )
        # Bound the WORST-CASE accepted-step count, not the nominal
        # one: the integrator may refine down to its min_dt floor
        # (dt/1024 adaptive, dt/64 fixed), and each accepted step is
        # held in memory before the 256-point resample — without this
        # a default 60 ms / 1 us request validates at 60k nominal
        # steps yet can pin a scheduler worker for millions.  The
        # matrix mode does not enter the bound: dense and sparse share
        # the identical LTE/Newton step-control rules, so the worst
        # case refinement (and thus the accepted-step ceiling) is the
        # same for every strategy.
        refine = 1024 if self.method == "adaptive" else 64
        steps = self.t_stop / self.dt * refine
        if steps > MAX_STEPS:
            raise SimRequestError(
                f"t_stop/dt x the {self.method!r} backend's maximum step "
                f"refinement ({refine}x) is {steps:.3g} steps per cell; the "
                f"bound is {MAX_STEPS} — raise dt or shorten t_stop "
                f"(carrier-resolved studies run microsecond horizons at "
                f"nanosecond steps)"
            )
        if len(batch) * SPICE_N_POINTS > MAX_TRACE_VALUES:
            raise SimRequestError(
                f"{len(batch)} cells x {SPICE_N_POINTS} trace points exceeds "
                f"the {MAX_TRACE_VALUES} response-trace budget — split the study"
            )
        # Static pre-flight: lint one representative circuit per
        # distinct template (the cells of a template share one
        # topology), so a structurally broken circuit is rejected as a
        # typed 400 here instead of failing on a scheduler worker.
        from repro.spice.analyze import CircuitLintError, check_circuit

        seen = set()
        for sc in batch.scenarios:
            if sc.template in seen:
                continue
            seen.add(sc.template)
            circuit, _node = sc.build()
            try:
                check_circuit(circuit, "error")
            except CircuitLintError as exc:
                raise SimRequestError(
                    f"template {sc.template!r} fails circuit lint: {exc}"
                ) from exc
        object.__setattr__(self, "_scenarios", batch.scenarios)

    def _init_montecarlo(self):
        from repro.variability import ParameterSpread

        if self.limit / self.dt > MAX_STEPS:
            raise SimRequestError(
                f"limit/dt is {self.limit / self.dt:.3g} search steps per "
                f"sample; the bound is {MAX_STEPS} — raise dt or lower limit"
            )
        n = int(self.n_samples)
        if not 1 <= n <= MAX_SAMPLES:
            raise SimRequestError(
                f"n_samples must be 1..{MAX_SAMPLES}, got {self.n_samples}"
            )
        object.__setattr__(self, "n_samples", n)
        object.__setattr__(self, "seed", int(self.seed))
        if not self.spreads:
            raise SimRequestError("a montecarlo request needs at least one spread")
        parsed = []
        for spec in self.spreads:
            if isinstance(spec, ParameterSpread):
                spread = spec
            else:
                try:
                    spread = ParameterSpread(**dict(spec))
                except (TypeError, ValueError) as exc:
                    raise SimRequestError(f"bad spread {spec!r}: {exc}") from exc
            if spread.name not in MC_PARAMS:
                raise SimRequestError(
                    f"unknown spread parameter {spread.name!r}; known: {list(MC_PARAMS)}"
                )
            parsed.append(spread)
        object.__setattr__(self, "spreads", tuple(parsed))

    # ------------------------------------------------------------------
    @property
    def scenarios(self):
        """The request's cells (None for montecarlo)."""
        return self._scenarios

    @property
    def n_cells(self):
        if self.kind == "montecarlo":
            return int(self.n_samples)
        return len(self._scenarios)

    def group_key(self):
        """Requests sharing this key run as one coalesced engine batch
        (same mode, same shared engine parameters)."""
        if self.kind == "sweep":
            return ("sweep", self.t_stop)
        if self.kind == "transient":
            return ("transient", self.t_stop, self.dt, self.p_in)
        if self.kind == "battery":
            return ("battery", self.p_in, self.v_target, self.dt, self.limit)
        if self.kind == "spice":
            # matrix is in the batching key (a family must be solved
            # by one strategy) but NOT in the cell keys below — the
            # strategy never changes a cell's content address.
            return ("spice", self.t_stop, self.dt, self.method, self.matrix)
        return ("montecarlo",)

    def cell_keys(self, system, controller):
        """Per-cell content addresses — the same
        :func:`~repro.engine.store.canonical_key` values the
        orchestrator files results under, so in-flight deduplication
        and the on-disk cache agree on what "the same cell" means."""
        if self.kind == "spice":
            return spice_cell_keys(
                SpiceBatch(self._scenarios),
                self.t_stop,
                self.dt,
                method=self.method,
                n_points=SPICE_N_POINTS,
            )
        batch = ScenarioBatch(self._scenarios) if self.kind != "montecarlo" else None
        if self.kind == "sweep":
            return control_cell_keys(batch, system, controller, self.t_stop)
        if self.kind == "transient":
            return envelope_cell_keys(batch, self.p_in, self.t_stop, dt=self.dt)
        if self.kind == "battery":
            return charge_cell_keys(
                batch, self.p_in, self.v_target, dt=self.dt, limit=self.limit
            )
        # A montecarlo request is one indivisible cell: identical
        # specs (spreads + seed + kernel params) are identical results
        # because chunk seeding is deterministic.
        doc = {
            "mode": "montecarlo",
            "spreads": [_spread_doc(s) for s in self.spreads],
            "n_samples": self.n_samples,
            "seed": self.seed,
            "p_in": self.p_in,
            "v_target": self.v_target,
            "dt": self.dt,
            "limit": self.limit,
        }
        return [canonical_key(doc)]

    def mc_kernel(self):
        """The picklable evaluate-batch callable for this request."""
        return functools.partial(
            mc_charge_kernel,
            p_in=self.p_in,
            v_target=self.v_target,
            dt=self.dt,
            limit=self.limit,
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_payload(cls, payload):
        """Build a request from a decoded JSON document, mapping every
        malformed field to a typed error (:class:`SimRequestError` or
        :class:`~repro.engine.scenario.ScenarioAxisError`) the HTTP
        front-end reports as a 400."""
        if not isinstance(payload, dict):
            raise SimRequestError(
                f"request body must be a JSON object, got {type(payload).__name__}"
            )
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(payload) - known - {"priority"}
        if unknown:
            raise SimRequestError(
                f"unknown request fields {sorted(unknown)}; known: {sorted(known)}"
            )
        kwargs = {k: v for k, v in payload.items() if k in known}
        axes = kwargs.get("axes", {})
        if axes is not None and not isinstance(axes, dict):
            raise SimRequestError(
                f"axes must be an object of axis: [values], got {type(axes).__name__}"
            )
        if "spreads" in kwargs:
            if not isinstance(kwargs["spreads"], (list, tuple)):
                raise SimRequestError("spreads must be a list of spread objects")
            kwargs["spreads"] = tuple(kwargs["spreads"])
        if "kind" not in kwargs:
            raise SimRequestError("request needs a 'kind' field")
        fields = KIND_FIELDS.get(kwargs["kind"])
        if fields is not None:
            extra = set(kwargs) - {"kind"} - fields
            if extra:
                raise SimRequestError(
                    f"fields {sorted(extra)} do not apply to a "
                    f"{kwargs['kind']!r} request; it takes {sorted(fields)}"
                )
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise SimRequestError(str(exc)) from exc

    def as_payload(self):
        """The request as a JSON-able submit body (inverse of
        :meth:`from_payload` for JSON-expressible requests)."""
        doc = {"kind": self.kind}
        if self.kind == "montecarlo":
            doc.update(
                {
                    "n_samples": self.n_samples,
                    "seed": self.seed,
                    "p_in": self.p_in,
                    "v_target": self.v_target,
                    "dt": self.dt,
                    "limit": self.limit,
                    "spreads": [_spread_doc(s) for s in self.spreads],
                }
            )
            return doc
        doc["axes"] = {name: list(values) for name, values in self.axes.items()}
        if self.kind == "sweep":
            doc["t_stop"] = self.t_stop
        elif self.kind == "transient":
            doc.update({"t_stop": self.t_stop, "dt": self.dt, "p_in": self.p_in})
        elif self.kind == "spice":
            doc.update({"t_stop": self.t_stop, "dt": self.dt,
                        "method": self.method, "matrix": self.matrix})
        else:
            doc.update(
                {
                    "p_in": self.p_in,
                    "v_target": self.v_target,
                    "dt": self.dt,
                    "limit": self.limit,
                }
            )
        return doc
