"""Micro-batched, cache-aware request coalescing.

The scheduler is why one 1-CPU host can answer many concurrent
clients: requests that arrive within one batching window are coalesced
into a single :class:`~repro.engine.scenario.ScenarioBatch` dispatched
through the :class:`~repro.engine.parallel.SweepOrchestrator`, so N
coalesced requests pay ~one engine invocation instead of N — the same
amortisation `ScenarioBatch` applied to per-scenario cost, lifted to
per-request cost.

Before dispatch, cells are deduplicated across requests by their
:class:`~repro.engine.store.ResultStore` content address: two clients
asking for the same (scenario, mode, engine-parameters) cell share one
computed row, and with a store attached the orchestrator additionally
skips any cell a *previous* batch (or another process) already filed.

The dispatch loop:

1. wait for the first queued job (no idle spinning);
2. keep collecting jobs for ``window`` seconds or until ``max_batch``
   cells are gathered — this is the micro-batch;
3. group the collected jobs by :meth:`SimRequest.group_key` (only
   same-mode, same-engine-parameter requests can share one batch);
4. per group: dedupe cells, run ONE orchestrated batch in a worker
   thread (the event loop keeps serving submits/status meanwhile),
   scatter per-job result rows, resolve the jobs.

Jobs cancelled while queued are skipped at collection time — their
cells are never dispatched.
"""

from __future__ import annotations

import asyncio
import math
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.engine.scenario import (
    BatchControlResult,
    ScenarioBatch,
    SpiceBatch,
)
from repro.service.jobs import JobState
from repro.variability import MonteCarlo


def wire_float(value):
    """One float as JSON-safe wire data (non-finite -> None)."""
    value = float(value)
    return value if math.isfinite(value) else None


def wire_list(values):
    """A float array as strict-JSON wire data.

    ``float(v)`` round-trips bitwise through JSON text (shortest-repr
    guarantees), which is what makes the service's "responses are
    bitwise-identical to a direct orchestrator run" acceptance bench
    meaningful; non-finite samples travel as None.
    """
    return [wire_float(v) for v in np.asarray(values, dtype=float)]


@dataclass
class SchedulerStats:
    """Aggregate micro-batching counters over the scheduler lifetime."""

    batches: int = 0
    jobs_done: int = 0
    jobs_failed: int = 0
    cells_requested: int = 0
    cells_deduped: int = 0  # shared with another request in-batch
    cells_cached: int = 0  # served by the result store
    cells_computed: int = 0
    batch_cells: deque = field(default_factory=lambda: deque(maxlen=256))
    batch_jobs: deque = field(default_factory=lambda: deque(maxlen=256))

    def as_dict(self):
        sizes = list(self.batch_cells)
        jobs = list(self.batch_jobs)
        requested = self.cells_requested
        return {
            "batches": self.batches,
            "jobs_done": self.jobs_done,
            "jobs_failed": self.jobs_failed,
            "cells_requested": self.cells_requested,
            "cells_deduped": self.cells_deduped,
            "cells_cached": self.cells_cached,
            "cells_computed": self.cells_computed,
            "dedup_rate": self.cells_deduped / requested if requested else 0.0,
            "cache_hit_rate": self.cells_cached / requested if requested else 0.0,
            "mean_batch_cells": sum(sizes) / len(sizes) if sizes else 0.0,
            "max_batch_cells": max(sizes, default=0),
            "mean_batch_jobs": sum(jobs) / len(jobs) if jobs else 0.0,
        }


class MicroBatchScheduler:
    """Drains a :class:`~repro.service.jobs.JobQueue` into coalesced
    orchestrator batches (see the module docstring).

    Parameters
    ----------
    queue : the bounded job queue to drain.
    system / controller : the shared physics (every request of one
        service instance runs against one system + controller — they
        are part of every cell's content address).
    orchestrator : the :class:`SweepOrchestrator` every batch runs
        through (bring a store for cross-batch caching, workers for
        multi-core hosts).
    window : seconds to keep collecting after the first job arrives.
        The window trades a bounded latency floor for batching factor;
        at heavy concurrency all co-arriving requests land in one
        engine call.
    max_batch : cell budget per micro-batch; collection stops early
        when reached (further jobs stay queued for the next batch).
    recorder : optional :class:`~repro.obs.recorder.MetricsRecorder`;
        when set, every dispatched group emits a ``batch`` event, each
        terminal job a ``job`` event, and every micro-batch samples the
        queue depth into a ``queue`` event.
    """

    def __init__(
        self,
        queue,
        system,
        controller,
        orchestrator,
        window=10e-3,
        max_batch=512,
        recorder=None,
    ):
        if window < 0:
            raise ValueError("window must be >= 0")
        self.queue = queue
        self.system = system
        self.controller = controller
        self.orchestrator = orchestrator
        self.window = float(window)
        self.max_batch = max(1, int(max_batch))
        self.recorder = recorder
        self.stats = SchedulerStats()
        self._running = False

    # -- the dispatch loop ---------------------------------------------
    async def run(self):
        """Serve until cancelled (the service owns this as a task).

        Cancellation never strands a job: anything popped into the
        collection window — or mid-dispatch — that is not yet terminal
        is pushed back onto the queue, so a restarted scheduler
        resumes it (mid-dispatch cells recompute; with a store they
        are cache hits).
        """
        self._running = True
        try:
            while True:
                job = await self.queue.pop()
                group = [job]
                try:
                    await self._collect_into(group)
                    await self._execute(group)
                except asyncio.CancelledError:
                    self._requeue(group)
                    raise
        finally:
            self._running = False

    def _requeue(self, group):
        """Give popped-but-unfinished jobs back to the queue."""
        for job in group:
            if not job.state.terminal:
                job.state = JobState.QUEUED
                job.started_at = None
                self.queue.requeue(job)

    async def _collect_into(self, group):
        """The micro-batch: everything arriving within the window on
        top of ``group``, capped at ``max_batch`` cells (appending in
        place so a cancelled collection loses nothing)."""
        cells = sum(job.request.n_cells for job in group)
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.window
        while cells < self.max_batch:
            remaining = deadline - loop.time()
            if remaining <= 0:
                job = self.queue.pop_nowait()
            else:
                job = await self.queue.pop(timeout=remaining)
            if job is None:
                break
            group.append(job)
            cells += job.request.n_cells

    async def _execute(self, group):
        """Run one collected micro-batch: group by engine parameters,
        dedupe, dispatch, scatter."""
        live = [job for job in group if job.state is JobState.QUEUED]
        if not live:
            return
        by_key = {}
        for job in live:
            by_key.setdefault(job.request.group_key(), []).append(job)
        self.stats.batches += 1
        self.stats.batch_jobs.append(len(live))
        self.stats.batch_cells.append(sum(job.request.n_cells for job in live))
        if self.recorder is not None:
            # Depth at collection close = jobs left waiting for the
            # *next* micro-batch — the backpressure signal.
            self.recorder.emit("queue", depth=self.queue.depth)
        for jobs in by_key.values():
            await self._run_group(jobs)

    async def _run_group(self, jobs):
        """One engine invocation for one compatible job group.

        The QUEUED re-check matters: earlier groups of the same
        micro-batch run first, and a job can be legitimately cancelled
        while they do — it must stay cancelled, not be resurrected
        into this group's dispatch.
        """
        jobs = [job for job in jobs if job.state is JobState.QUEUED]
        if not jobs:
            return
        now = time.monotonic()
        for job in jobs:
            job.state = JobState.RUNNING
            job.started_at = now
        kind = jobs[0].request.kind
        t0 = time.perf_counter()
        try:
            # The content-key fingerprints, the dedup pass, the engine
            # run, and the wire-format scattering are all heavy — do
            # the lot in the worker thread so the event loop keeps
            # serving submits/status.
            loop = asyncio.get_running_loop()
            shaped, shared_counts, unique_total = await loop.run_in_executor(
                None, self._plan_and_dispatch, kind, jobs
            )
            for job, shared in zip(jobs, shared_counts):
                job.shared_cells = shared
                self.stats.cells_requested += job.request.n_cells
                self.stats.cells_deduped += shared
            ostats = self.orchestrator.stats
            if kind != "montecarlo" and ostats is not None:
                cached, computed = ostats.n_cached, ostats.n_computed
            else:
                cached, computed = 0, unique_total
            self.stats.cells_cached += cached
            self.stats.cells_computed += computed
            for job, result in zip(jobs, shaped):
                job.finish(JobState.DONE, result=result)
                self.stats.jobs_done += 1
            self._record_batch(
                kind, jobs, shared_counts, cached, computed, time.perf_counter() - t0
            )
        except Exception as exc:  # noqa: BLE001 - engine/axis errors
            message = f"{type(exc).__name__}: {exc}"
            for job in jobs:
                if not job.state.terminal:
                    job.finish(JobState.FAILED, error=message)
                    self.stats.jobs_failed += 1
            self._record_jobs(kind, jobs)

    # -- metrics emission ----------------------------------------------
    def _record_batch(self, kind, jobs, shared_counts, cached, computed, elapsed):
        if self.recorder is None:
            return
        self.recorder.emit(
            "batch",
            kind=kind,
            jobs=len(jobs),
            cells=sum(job.request.n_cells for job in jobs),
            deduped=sum(shared_counts),
            cached=cached,
            computed=computed,
            elapsed_s=elapsed,
        )
        self._record_jobs(kind, jobs)

    def _record_jobs(self, kind, jobs):
        if self.recorder is None:
            return
        for job in jobs:
            if not job.state.terminal:
                continue
            self.recorder.emit(
                "job",
                kind=kind,
                state=job.state.value,
                cells=job.request.n_cells,
                latency_s=job.latency if job.latency is not None else 0.0,
            )

    # -- planning + engine dispatch (worker thread) --------------------
    def _plan_and_dispatch(self, kind, jobs):
        """Compute content keys, dedupe across requests (first
        occurrence of an address wins; later requests share its row),
        run the deduplicated cells as ONE orchestrated call, and shape
        every job's wire-format result slice.

        Returns (per-job shaped results, per-job shared-cell counts,
        unique cell total) — the dedup rule lives only here.
        """
        job_keys = [
            job.request.cell_keys(self.system, self.controller) for job in jobs
        ]
        index = {}
        unique_cells = []
        unique_keys = []
        shared_counts = []
        unique_total = 0
        for job, keys in zip(jobs, job_keys):
            shared = 0
            cells = job.request.scenarios if kind != "montecarlo" else [job.request]
            weight = job.request.n_cells if kind == "montecarlo" else 1
            for key, cell in zip(keys, cells):
                if key in index:
                    shared += weight
                    continue
                index[key] = len(unique_cells)
                unique_cells.append(cell)
                unique_keys.append(key)
                unique_total += weight
            shared_counts.append(shared)
        rows = self._dispatch(kind, jobs[0].request, unique_cells, unique_keys)
        shaped = [
            self._shape(job.request, keys, index, rows)
            for job, keys in zip(jobs, job_keys)
        ]
        return shaped, shared_counts, unique_total

    def _dispatch(self, kind, proto, unique_cells, unique_keys):
        """The single engine invocation for one deduplicated group.

        ``proto`` supplies the group-shared engine parameters (all jobs
        in the group have the same group_key, hence the same values);
        ``unique_keys`` are handed to the orchestrator so the store
        lookups reuse the dedup pass's fingerprints instead of
        recomputing them.
        """
        if kind == "montecarlo":
            out = []
            for request in unique_cells:
                mc = MonteCarlo(list(request.spreads), seed=request.seed)
                merged = self.orchestrator.run_montecarlo(
                    mc,
                    request.mc_kernel(),
                    n_samples=request.n_samples,
                    seed=request.seed,
                )
                out.append(merged)
            return out
        if kind == "spice":
            from repro.service.requests import SPICE_N_POINTS

            return self.orchestrator.run_spice(
                SpiceBatch(unique_cells),
                proto.t_stop,
                proto.dt,
                method=proto.method,
                n_points=SPICE_N_POINTS,
                keys=unique_keys,
            )
        batch = ScenarioBatch(unique_cells)
        if kind == "sweep":
            return self.orchestrator.run_control(
                batch, self.system, self.controller, proto.t_stop, keys=unique_keys
            )
        if kind == "transient":
            return self.orchestrator.run_envelope(
                batch, proto.p_in, proto.t_stop, dt=proto.dt, keys=unique_keys
            )
        return self.orchestrator.charge_times(
            batch,
            proto.p_in,
            proto.v_target,
            dt=proto.dt,
            limit=proto.limit,
            keys=unique_keys,
        )

    # -- result scattering ---------------------------------------------
    def _shape(self, request, keys, index, rows):
        """This job's slice of the batch result, as JSON-safe data."""
        if request.kind == "montecarlo":
            merged = rows[index[keys[0]]]
            samples = merged["t_charge"]
            finite = samples[np.isfinite(samples)]
            return {
                "kind": "montecarlo",
                "metric": "t_charge",
                "n_samples": int(samples.size),
                "seed": request.seed,
                "samples": wire_list(samples),
                "mean": wire_float(finite.mean()) if finite.size else None,
                "std": wire_float(finite.std(ddof=1)) if finite.size > 1 else None,
                "reached_target": int(finite.size),
            }
        picks = [index[key] for key in keys]
        scenarios = request.scenarios
        if request.kind == "sweep":
            sub = BatchControlResult(
                times=rows.times,
                distance=rows.distance[picks],
                v_rect=rows.v_rect[picks],
                v_reported=rows.v_reported[picks],
                drive_scale=rows.drive_scale[picks],
                p_delivered=rows.p_delivered[picks],
                saturated=rows.saturated[picks],
                scenarios=scenarios,
            )
            frac, v_min, v_max, drive = sub.regulation_statistics()
            return {
                "kind": "sweep",
                "t_stop": request.t_stop,
                "times": wire_list(rows.times),
                "cells": [
                    {
                        "label": sc.label,
                        "distance": wire_list(sub.distance[i]),
                        "v_rect": wire_list(sub.v_rect[i]),
                        "v_reported": wire_list(sub.v_reported[i]),
                        "drive_scale": wire_list(sub.drive_scale[i]),
                        "p_delivered": wire_list(sub.p_delivered[i]),
                        "saturated": [bool(v) for v in sub.saturated[i]],
                        "in_window": float(frac[i]),
                        "v_min": float(v_min[i]),
                        "v_max": float(v_max[i]),
                        "mean_drive": float(drive[i]),
                    }
                    for i, sc in enumerate(scenarios)
                ],
            }
        if request.kind == "transient":
            return {
                "kind": "transient",
                "t_stop": request.t_stop,
                "dt": request.dt,
                "times": wire_list(rows.times),
                "cells": [
                    {
                        "label": sc.label,
                        "v_rect": wire_list(rows.v_rect[pick]),
                        "p_in": wire_float(rows.p_in[pick]),
                        "i_load": wire_float(rows.i_load[pick]),
                        "v_final": wire_float(rows.v_rect[pick, -1]),
                    }
                    for sc, pick in zip(scenarios, picks)
                ],
            }
        if request.kind == "spice":
            return {
                "kind": "spice",
                "t_stop": request.t_stop,
                "dt": request.dt,
                "method": request.method,
                "times": wire_list(rows.times),
                "cells": [
                    {
                        "label": sc.label,
                        "template": sc.template,
                        "amplitude": sc.amplitude,
                        "freq": sc.freq,
                        "i_load": sc.i_load,
                        "v_out": wire_list(rows.v_out[pick]),
                        "v_final": wire_float(rows.v_final[pick]),
                        "ripple": wire_float(rows.ripple[pick]),
                        "steps": int(rows.steps[pick]),
                    }
                    for sc, pick in zip(scenarios, picks)
                ],
            }
        return {
            "kind": "battery",
            "p_in": request.p_in,
            "v_target": request.v_target,
            "cells": [
                {
                    "label": sc.label,
                    "t_charge": wire_float(rows[pick]),
                }
                for sc, pick in zip(scenarios, picks)
            ],
        }
