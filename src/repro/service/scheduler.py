"""Micro-batched, cache-aware request coalescing.

The scheduler is why one small host can answer many concurrent
clients: requests that arrive within one batching window are coalesced
into a single :class:`~repro.engine.scenario.ScenarioBatch` dispatched
through the :class:`~repro.engine.parallel.SweepOrchestrator`, so N
coalesced requests pay ~one engine invocation instead of N — the same
amortisation `ScenarioBatch` applied to per-scenario cost, lifted to
per-request cost.

Before dispatch, cells are deduplicated across requests by their
storage-backend content address (:func:`repro.storage.canonical_key`):
two clients asking for the same (scenario, mode, engine-parameters)
cell share one computed row, and with a backend attached the
orchestrator additionally skips any cell a *previous* batch (or
another process) already filed.

The dispatch loop:

1. wait for the first queued job (no idle spinning);
2. keep collecting jobs for ``window`` seconds or until ``max_batch``
   cells are gathered — this is the micro-batch;
3. group the collected jobs by :meth:`SimRequest.group_key` (only
   same-mode, same-engine-parameter requests can share one batch);
4. per group: dedupe cells, claim them in the cross-worker
   :class:`InFlightIndex` (cells another scheduler worker is already
   computing are awaited, then read from the shared backend instead
   of recomputed), run the owned cells in *slices* — each slice is
   one orchestrated engine call in a worker thread or a scheduler
   worker process — and publish every job's newly resolved cells as
   a streamed chunk (:meth:`Job.add_chunk`) the moment its slice
   lands;
5. assemble each job's final result from the very same per-cell
   documents the chunks carried (streamed and final cells are one
   object, so stream-vs-final parity is structural, not incidental).

Jobs cancelled while queued are skipped at collection time — their
cells are never dispatched.

Multi-worker dispatch: when the service runs N scheduler workers, each
owns one ``MicroBatchScheduler`` with a shared
:class:`concurrent.futures.ProcessPoolExecutor`.  Slices are shipped
to pool processes as plain specs (request + physics + cells + the
backend *URI* — live handles never cross the boundary; the worker
re-opens the backend by URI, cached per process).  Metrics events
recorded inside a pool worker travel back with the slice result and
are re-emitted by the parent tagged with the scheduler-worker id.
"""

from __future__ import annotations

import asyncio
import math
import pickle
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.engine.parallel import _CONTROL_FIELDS
from repro.engine.scenario import (
    BatchControlResult,
    ScenarioBatch,
    SpiceBatch,
)
from repro.service.jobs import JobState
from repro.variability import MonteCarlo


def wire_float(value):
    """One float as JSON-safe wire data (non-finite -> None)."""
    value = float(value)
    return value if math.isfinite(value) else None


def wire_list(values):
    """A float array as strict-JSON wire data.

    ``float(v)`` round-trips bitwise through JSON text (shortest-repr
    guarantees), which is what makes the service's "responses are
    bitwise-identical to a direct orchestrator run" acceptance bench
    meaningful; non-finite samples travel as None.
    """
    return [wire_float(v) for v in np.asarray(values, dtype=float)]


@dataclass
class SchedulerStats:
    """Aggregate micro-batching counters over the scheduler lifetime."""

    batches: int = 0
    jobs_done: int = 0
    jobs_failed: int = 0
    cells_requested: int = 0
    cells_deduped: int = 0  # shared with another request in-batch
    cells_cached: int = 0  # served by the storage backend
    cells_computed: int = 0
    chunks_streamed: int = 0
    batch_cells: deque = field(default_factory=lambda: deque(maxlen=256))
    batch_jobs: deque = field(default_factory=lambda: deque(maxlen=256))

    def as_dict(self):
        return SchedulerStats.merged([self])

    @staticmethod
    def merged(stats_list):
        """One combined ``as_dict`` document over several scheduler
        workers' counter blocks (sums for counters, pooled windows for
        the batch-size statistics) — ``merged([one])`` is exactly that
        scheduler's own document, so the service ``/stats`` endpoint
        uses one code path for any worker count."""
        sizes = [size for stats in stats_list for size in stats.batch_cells]
        jobs = [count for stats in stats_list for count in stats.batch_jobs]
        requested = sum(stats.cells_requested for stats in stats_list)
        deduped = sum(stats.cells_deduped for stats in stats_list)
        cached = sum(stats.cells_cached for stats in stats_list)
        return {
            "batches": sum(stats.batches for stats in stats_list),
            "jobs_done": sum(stats.jobs_done for stats in stats_list),
            "jobs_failed": sum(stats.jobs_failed for stats in stats_list),
            "cells_requested": requested,
            "cells_deduped": deduped,
            "cells_cached": cached,
            "cells_computed": sum(stats.cells_computed for stats in stats_list),
            "chunks_streamed": sum(stats.chunks_streamed for stats in stats_list),
            "dedup_rate": deduped / requested if requested else 0.0,
            "cache_hit_rate": cached / requested if requested else 0.0,
            "mean_batch_cells": sum(sizes) / len(sizes) if sizes else 0.0,
            "max_batch_cells": max(sizes, default=0),
            "mean_batch_jobs": sum(jobs) / len(jobs) if jobs else 0.0,
        }


class InFlightIndex:
    """Cross-worker registry of content keys currently being computed.

    Event-loop confined (all scheduler workers share one loop): a
    worker *claims* the keys of its group before dispatch; keys some
    other worker already claimed come back as futures to await — the
    deterministic "computed exactly once" rule of cross-worker dedup.
    Owners release their keys after the backend write, so a waiter
    that then reads the shared backend sees the row.
    """

    def __init__(self):
        self._futures = {}

    def claim(self, keys):
        """Partition ``keys`` into (owned list, {key: future} foreign)."""
        loop = asyncio.get_running_loop()
        owned, foreign = [], {}
        for key in keys:
            fut = self._futures.get(key)
            if fut is None or fut.done():
                self._futures[key] = loop.create_future()
                owned.append(key)
            else:
                foreign[key] = fut
        return owned, foreign

    def release(self, keys):
        """Resolve and forget ``keys`` (owner side; always called —
        even on failure, so waiters fall back to computing locally
        instead of hanging)."""
        for key in keys:
            fut = self._futures.pop(key, None)
            if fut is not None and not fut.done():
                fut.set_result(None)


@dataclass
class _GroupPlan:
    """The dedup pass of one job group: per-job key lists, one cell
    per unique content address (first occurrence wins), and how many
    engine cells each unique key stands for."""

    job_keys: list
    cells: dict  # key -> cell (scenario, or the SimRequest for mc)
    unique_keys: list
    weights: dict  # key -> engine cells this unique key represents
    shared_counts: list  # per job: cells shared with an earlier request


# ----------------------------------------------------------------------
# Slice execution — module-level so pool worker processes can import it
# ----------------------------------------------------------------------

#: Per-process cache of re-opened backends in pool workers.
_WORKER_BACKENDS = {}


def _worker_backend(uri):
    if uri is None:
        return None
    backend = _WORKER_BACKENDS.get(uri)
    if backend is None:
        from repro.storage import open_backend

        backend = open_backend(uri)
        _WORKER_BACKENDS[uri] = backend
    return backend


def _pool_warm(uri):
    """Pre-import the engine stack (and open the backend) in a pool
    worker so the first real slice does not pay the import cost."""
    import repro.engine.parallel  # noqa: F401
    import repro.service.requests  # noqa: F401

    _worker_backend(uri)
    import os

    return os.getpid()


def _run_slice(orchestrator, system, controller, proto, cells, keys):
    """One deduplicated slice through one engine invocation.

    Returns ``(rows_by_key, info)`` where ``rows_by_key`` maps each
    content key to its plain row dict (exactly the layout the storage
    backends hold, so rows computed here, read from the backend, or
    fetched after a cross-worker wait are interchangeable) and
    ``info`` carries the cached/computed cell counts.
    """
    kind = proto.kind
    store = orchestrator.store
    if kind == "montecarlo":
        rows = {}
        cached = computed = 0
        for request, key in zip(cells, keys):
            merged = store.get(key) if store is not None else None
            if merged is not None:
                cached += request.n_cells
            else:
                mc = MonteCarlo(list(request.spreads), seed=request.seed)
                merged = orchestrator.run_montecarlo(
                    mc,
                    request.mc_kernel(),
                    n_samples=request.n_samples,
                    seed=request.seed,
                )
                computed += request.n_cells
                if store is not None:
                    store.put(key, merged)
            rows[key] = merged
        return rows, {"cached": cached, "computed": computed}
    use_keys = list(keys) if store is not None else None
    if kind == "spice":
        from repro.service.requests import SPICE_N_POINTS

        result = orchestrator.run_spice(
            SpiceBatch(list(cells)),
            proto.t_stop,
            proto.dt,
            method=proto.method,
            n_points=SPICE_N_POINTS,
            keys=use_keys,
            matrix=proto.matrix,
        )
        rows = {
            key: {
                "v_out": result.v_out[i],
                "v_final": np.asarray(result.v_final[i]),
                "ripple": np.asarray(result.ripple[i]),
                "steps": np.asarray(result.steps[i]),
            }
            for i, key in enumerate(keys)
        }
    elif kind == "sweep":
        result = orchestrator.run_control(
            ScenarioBatch(list(cells)), system, controller, proto.t_stop, keys=use_keys
        )
        rows = {
            key: {name: getattr(result, name)[i] for name in _CONTROL_FIELDS}
            for i, key in enumerate(keys)
        }
    elif kind == "transient":
        result = orchestrator.run_envelope(
            ScenarioBatch(list(cells)),
            proto.p_in,
            proto.t_stop,
            dt=proto.dt,
            keys=use_keys,
        )
        rows = {
            key: {
                "v_rect": result.v_rect[i],
                "p_in": np.asarray(result.p_in[i]),
                "i_load": np.asarray(result.i_load[i]),
            }
            for i, key in enumerate(keys)
        }
    else:  # battery
        out = orchestrator.charge_times(
            ScenarioBatch(list(cells)),
            proto.p_in,
            proto.v_target,
            dt=proto.dt,
            limit=proto.limit,
            keys=use_keys,
        )
        rows = {key: {"t_charge": np.asarray(out[i])} for i, key in enumerate(keys)}
    stats = orchestrator.stats
    return rows, {"cached": stats.n_cached, "computed": stats.n_computed}


def _pool_run_slice(spec):
    """Run one slice inside a scheduler-worker process.

    The spec is plain picklable data; the backend is re-opened from
    its URI (cached per process).  Metrics events recorded by the
    in-process orchestrator are stripped of their envelope and
    returned in ``info["events"]`` for the parent to re-emit tagged
    with the scheduler-worker id — the recorder itself never crosses
    the process boundary.
    """
    from repro.engine.parallel import SweepOrchestrator
    from repro.obs import MetricsRecorder

    recorder = MetricsRecorder(label=f"scheduler-worker-{spec['worker']}")
    orchestrator = SweepOrchestrator(
        workers=1, store=_worker_backend(spec["backend_uri"]), recorder=recorder
    )
    rows, info = _run_slice(
        orchestrator,
        spec["system"],
        spec["controller"],
        spec["request"],
        spec["cells"],
        spec["keys"],
    )
    events = []
    for doc in recorder.events():
        if doc["event"] in ("session_start", "session_end"):
            continue
        events.append(
            {name: value for name, value in doc.items() if name not in
             ("ts", "seq", "session")}
        )
    info["events"] = events
    return rows, info


def _picklable(obj):
    try:
        pickle.dumps(obj)
    except Exception:  # noqa: BLE001 - any pickle failure means "no"
        return False
    return True


class MicroBatchScheduler:
    """Drains a :class:`~repro.service.jobs.JobQueue` into coalesced
    orchestrator batches (see the module docstring).

    Parameters
    ----------
    queue : the bounded job queue to drain (shared by every scheduler
        worker of one service).
    system / controller : the shared physics (every request of one
        service instance runs against one system + controller — they
        are part of every cell's content address).
    orchestrator : the :class:`SweepOrchestrator` this worker's local
        slices run through (bring a storage backend for cross-batch
        caching, workers for multi-core hosts).
    window : seconds to keep collecting after the first job arrives.
        The window trades a bounded latency floor for batching factor;
        at heavy concurrency all co-arriving requests land in one
        engine call.
    max_batch : cell budget per micro-batch; collection stops early
        when reached (further jobs stay queued for the next batch).
    recorder : optional :class:`~repro.obs.recorder.MetricsRecorder`;
        when set, every dispatched group emits a ``batch`` event, each
        terminal job a ``job`` event, every published chunk a
        ``stream`` event, and every micro-batch samples the queue
        depth into a ``queue`` event.
    worker_id : scheduler-worker id on a multi-worker service; tags
        every emitted event (None on a single-worker service — the
        classic untagged event stream).
    inflight : optional shared :class:`InFlightIndex` for cross-worker
        dedup (requires a shared storage backend to pay off).
    pool : optional shared :class:`~concurrent.futures.
        ProcessPoolExecutor`; when set, slices run in pool processes
        instead of this worker's executor thread.
    backend_uri : the storage backend's ``open_backend`` URI, shipped
        to pool workers so they open the same backend.
    stream_chunk : cell budget per streamed slice for the elementwise
        kinds (sweep/transient/battery) — smaller slices stream
        earlier chunks at slightly more per-call overhead.  Spice
        groups always run as one slice (cells share their slice's
        lockstep step control, so slicing would change the composed
        family); montecarlo requests stream one chunk per request.
    """

    def __init__(
        self,
        queue,
        system,
        controller,
        orchestrator,
        window=10e-3,
        max_batch=512,
        recorder=None,
        worker_id=None,
        inflight=None,
        pool=None,
        backend_uri=None,
        stream_chunk=256,
    ):
        if window < 0:
            raise ValueError("window must be >= 0")
        if int(stream_chunk) < 1:
            raise ValueError("stream_chunk must be >= 1")
        self.queue = queue
        self.system = system
        self.controller = controller
        self.orchestrator = orchestrator
        self.window = float(window)
        self.max_batch = max(1, int(max_batch))
        self.recorder = recorder
        self.worker_id = worker_id
        self.inflight = inflight
        self.pool = pool
        self.backend_uri = backend_uri
        self.stream_chunk = int(stream_chunk)
        self.stats = SchedulerStats()
        self._running = False

    @property
    def _worker_field(self):
        return {} if self.worker_id is None else {"worker": int(self.worker_id)}

    # -- the dispatch loop ---------------------------------------------
    async def run(self):
        """Serve until cancelled (the service owns this as a task).

        Cancellation never strands a job: anything popped into the
        collection window — or mid-dispatch — that is not yet terminal
        is pushed back onto the queue, so a restarted scheduler
        resumes it (mid-dispatch cells recompute; with a backend they
        are cache hits).
        """
        self._running = True
        try:
            while True:
                job = await self.queue.pop()
                group = [job]
                try:
                    await self._collect_into(group)
                    await self._execute(group)
                except asyncio.CancelledError:
                    self._requeue(group)
                    raise
        finally:
            self._running = False

    def _requeue(self, group):
        """Give popped-but-unfinished jobs back to the queue."""
        for job in group:
            if not job.state.terminal:
                job.state = JobState.QUEUED
                job.started_at = None
                self.queue.requeue(job)

    async def _collect_into(self, group):
        """The micro-batch: everything arriving within the window on
        top of ``group``, capped at ``max_batch`` cells (appending in
        place so a cancelled collection loses nothing)."""
        cells = sum(job.request.n_cells for job in group)
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.window
        while cells < self.max_batch:
            remaining = deadline - loop.time()
            if remaining <= 0:
                job = self.queue.pop_nowait()
            else:
                job = await self.queue.pop(timeout=remaining)
            if job is None:
                break
            group.append(job)
            cells += job.request.n_cells

    async def _execute(self, group):
        """Run one collected micro-batch: group by engine parameters,
        dedupe, dispatch, scatter."""
        live = [job for job in group if job.state is JobState.QUEUED]
        if not live:
            return
        by_key = {}
        for job in live:
            by_key.setdefault(job.request.group_key(), []).append(job)
        self.stats.batches += 1
        self.stats.batch_jobs.append(len(live))
        self.stats.batch_cells.append(sum(job.request.n_cells for job in live))
        if self.recorder is not None:
            # Depth at collection close = jobs left waiting for the
            # *next* micro-batch — the backpressure signal.
            self.recorder.emit("queue", depth=self.queue.depth, **self._worker_field)
        for jobs in by_key.values():
            await self._run_group(jobs)

    async def _run_group(self, jobs):
        """One compatible job group: plan, claim, dispatch in slices,
        stream, resolve.

        The QUEUED re-check matters: earlier groups of the same
        micro-batch run first, and a job can be legitimately cancelled
        while they do — it must stay cancelled, not be resurrected
        into this group's dispatch.
        """
        jobs = [job for job in jobs if job.state is JobState.QUEUED]
        if not jobs:
            return
        now = time.monotonic()
        for job in jobs:
            job.state = JobState.RUNNING
            job.started_at = now
        kind = jobs[0].request.kind
        t0 = time.perf_counter()
        loop = asyncio.get_running_loop()
        try:
            # Planning, engine slices, and wire-format scattering are
            # all heavy — they run in the worker thread (or a pool
            # process) so the event loop keeps serving submits/status.
            plan = await loop.run_in_executor(None, self._plan, kind, jobs)
            if self.inflight is not None:
                owned, foreign = self.inflight.claim(plan.unique_keys)
            else:
                owned, foreign = list(plan.unique_keys), {}
            rows = {}
            cell_docs = [{} for _ in jobs]
            cached = computed = 0
            try:
                for keys in self._slices(kind, owned):
                    cells = [plan.cells[key] for key in keys]
                    sliced, info = await self._dispatch_slice(
                        jobs[0].request, cells, keys, loop
                    )
                    rows.update(sliced)
                    cached += info["cached"]
                    computed += info["computed"]
                    await self._publish(kind, jobs, plan, rows, cell_docs, t0, loop)
                if foreign:
                    await asyncio.gather(*foreign.values())
                    fetched, missing = await loop.run_in_executor(
                        None, self._fetch_foreign, list(foreign)
                    )
                    rows.update(fetched)
                    cached += sum(plan.weights[key] for key in fetched)
                    if missing:
                        cells = [plan.cells[key] for key in missing]
                        sliced, info = await self._dispatch_slice(
                            jobs[0].request, cells, missing, loop
                        )
                        rows.update(sliced)
                        cached += info["cached"]
                        computed += info["computed"]
                    await self._publish(kind, jobs, plan, rows, cell_docs, t0, loop)
            finally:
                if self.inflight is not None:
                    self.inflight.release(owned)
            shaped = await loop.run_in_executor(
                None, self._finalize_jobs, jobs, plan, rows, cell_docs
            )
            for job, shared in zip(jobs, plan.shared_counts):
                job.shared_cells = shared
                self.stats.cells_requested += job.request.n_cells
                self.stats.cells_deduped += shared
            self.stats.cells_cached += cached
            self.stats.cells_computed += computed
            for job, result in zip(jobs, shaped):
                job.finish(JobState.DONE, result=result)
                self.stats.jobs_done += 1
            self._record_batch(
                kind,
                jobs,
                plan.shared_counts,
                cached,
                computed,
                time.perf_counter() - t0,
            )
        except Exception as exc:  # noqa: BLE001 - engine/axis errors
            message = f"{type(exc).__name__}: {exc}"
            for job in jobs:
                if not job.state.terminal:
                    job.finish(JobState.FAILED, error=message)
                    self.stats.jobs_failed += 1
            self._record_jobs(kind, jobs)

    # -- metrics emission ----------------------------------------------
    def _record_batch(self, kind, jobs, shared_counts, cached, computed, elapsed):
        if self.recorder is None:
            return
        self.recorder.emit(
            "batch",
            kind=kind,
            jobs=len(jobs),
            cells=sum(job.request.n_cells for job in jobs),
            deduped=sum(shared_counts),
            cached=cached,
            computed=computed,
            elapsed_s=elapsed,
            **self._worker_field,
        )
        self._record_jobs(kind, jobs)

    def _record_jobs(self, kind, jobs):
        if self.recorder is None:
            return
        for job in jobs:
            if not job.state.terminal:
                continue
            self.recorder.emit(
                "job",
                kind=kind,
                state=job.state.value,
                cells=job.request.n_cells,
                latency_s=job.latency if job.latency is not None else 0.0,
                **self._worker_field,
            )

    def _emit_harvested(self, events):
        """Re-emit metrics events a pool worker recorded, tagged with
        this scheduler worker's id."""
        if self.recorder is None:
            return
        for doc in events:
            doc = dict(doc)
            event = doc.pop("event")
            doc.update(self._worker_field)
            self.recorder.emit(event, **doc)

    # -- planning (worker thread) --------------------------------------
    def _plan(self, kind, jobs):
        """Compute content keys and dedupe across requests (first
        occurrence of an address wins; later requests share its row).
        The dedup rule lives only here."""
        job_keys = [job.request.cell_keys(self.system, self.controller) for job in jobs]
        cells_by_key = {}
        unique_keys = []
        weights = {}
        shared_counts = []
        for job, keys in zip(jobs, job_keys):
            shared = 0
            cells = job.request.scenarios if kind != "montecarlo" else [job.request]
            weight = job.request.n_cells if kind == "montecarlo" else 1
            for key, cell in zip(keys, cells):
                if key in cells_by_key:
                    shared += weight
                    continue
                cells_by_key[key] = cell
                unique_keys.append(key)
                weights[key] = weight
            shared_counts.append(shared)
        return _GroupPlan(
            job_keys=job_keys,
            cells=cells_by_key,
            unique_keys=unique_keys,
            weights=weights,
            shared_counts=shared_counts,
        )

    def _slices(self, kind, owned):
        """Slice the owned keys into per-engine-call batches (see the
        ``stream_chunk`` parameter notes for the per-kind policy)."""
        if not owned:
            return []
        if kind in ("sweep", "transient", "battery"):
            size = self.stream_chunk
        elif kind == "montecarlo":
            size = 1
        else:  # spice: one slice keeps the lockstep composition stable
            size = len(owned)
        return [owned[k : k + size] for k in range(0, len(owned), size)]

    # -- engine dispatch -----------------------------------------------
    async def _dispatch_slice(self, proto, cells, keys, loop):
        """One slice through the engine: a pool process when this
        scheduler has one (and the spec pickles), else the local
        orchestrator in the worker thread."""
        if self.pool is not None:
            spec = {
                "request": proto,
                "system": self.system,
                "controller": self.controller,
                "cells": list(cells),
                "keys": list(keys),
                "backend_uri": self.backend_uri,
                "worker": 0 if self.worker_id is None else int(self.worker_id),
            }
            if await loop.run_in_executor(None, _picklable, spec):
                rows, info = await asyncio.wrap_future(
                    self.pool.submit(_pool_run_slice, spec)
                )
                self._emit_harvested(info.pop("events", []))
                return rows, info
        return await loop.run_in_executor(
            None,
            _run_slice,
            self.orchestrator,
            self.system,
            self.controller,
            proto,
            cells,
            keys,
        )

    def _fetch_foreign(self, keys):
        """Read rows another scheduler worker computed from the shared
        backend; keys whose rows are not there (no backend, eviction,
        the owner failed) come back in ``missing`` and are computed
        locally."""
        store = self.orchestrator.store
        fetched, missing = {}, []
        for key in keys:
            row = store.get(key) if store is not None else None
            if row is None:
                missing.append(key)
            else:
                fetched[key] = row
        return fetched, missing

    # -- streaming ------------------------------------------------------
    async def _publish(self, kind, jobs, plan, rows, cell_docs, t0, loop):
        """Publish every job's newly resolved cells as one streamed
        chunk (document built in the worker thread; the chunk lands on
        the job on the event loop)."""
        ready = await loop.run_in_executor(
            None, self._build_ready, jobs, plan, rows, cell_docs
        )
        for job, batch in zip(jobs, ready):
            if not batch:
                continue
            indices, docs = batch
            chunk = {
                "job_id": job.id,
                "kind": kind,
                "seq": len(job.chunks),
                "cell_indices": indices,
                "cells": docs,
            }
            job.add_chunk(chunk)
            self.stats.chunks_streamed += 1
            if self.recorder is not None:
                self.recorder.emit(
                    "stream",
                    kind=kind,
                    seq=chunk["seq"],
                    cells=len(indices),
                    elapsed_s=time.perf_counter() - t0,
                    **self._worker_field,
                )

    def _build_ready(self, jobs, plan, rows, cell_docs):
        """Per job: the cell indices newly resolvable from ``rows``
        and their wire documents.  Documents are built exactly once
        and memoised in ``cell_docs`` — the final result reuses the
        same objects, which is what makes streamed chunks bitwise-
        identical to the final ``cells`` list."""
        out = []
        for job, keys, docs in zip(jobs, plan.job_keys, cell_docs):
            indices = [i for i in range(len(keys)) if i not in docs and keys[i] in rows]
            if not indices:
                out.append(None)
                continue
            built = self._cell_docs(job.request, indices, keys, rows)
            for i, doc in zip(indices, built):
                docs[i] = doc
            out.append((indices, built))
        return out

    # -- result scattering ---------------------------------------------
    def _times(self, request):
        """The shared time grid of one request's result — computed
        exactly as the orchestrator computes it, so wire parity with a
        direct run is preserved."""
        if request.kind == "sweep":
            return ScenarioBatch.control_times(self.controller, request.t_stop)
        if request.kind == "transient":
            return ScenarioBatch.envelope_times(request.t_stop, request.dt)
        if request.kind == "spice":
            from repro.service.requests import SPICE_N_POINTS

            return np.linspace(0.0, float(request.t_stop), SPICE_N_POINTS)
        return None

    def _cell_docs(self, request, indices, keys, rows):
        """JSON-safe per-cell documents for ``indices`` of one request
        (cell values read from the content-addressed ``rows``)."""
        kind = request.kind
        if kind == "montecarlo":
            merged = rows[keys[0]]
            samples = np.asarray(merged["t_charge"], dtype=float)
            finite = samples[np.isfinite(samples)]
            return [
                {
                    "kind": "montecarlo",
                    "metric": "t_charge",
                    "n_samples": int(samples.size),
                    "seed": request.seed,
                    "samples": wire_list(samples),
                    "mean": wire_float(finite.mean()) if finite.size else None,
                    "std": (
                        wire_float(finite.std(ddof=1)) if finite.size > 1 else None
                    ),
                    "reached_target": int(finite.size),
                }
            ]
        scenarios = request.scenarios
        if kind == "sweep":
            stacked = {
                name: np.stack([rows[keys[i]][name] for i in indices])
                for name in _CONTROL_FIELDS
            }
            sub = BatchControlResult(
                times=self._times(request),
                distance=stacked["distance"],
                v_rect=stacked["v_rect"],
                v_reported=stacked["v_reported"],
                drive_scale=stacked["drive_scale"],
                p_delivered=stacked["p_delivered"],
                saturated=stacked["saturated"].astype(bool),
                scenarios=[scenarios[i] for i in indices],
            )
            frac, v_min, v_max, drive = sub.regulation_statistics()
            return [
                {
                    "label": scenarios[i].label,
                    "distance": wire_list(sub.distance[j]),
                    "v_rect": wire_list(sub.v_rect[j]),
                    "v_reported": wire_list(sub.v_reported[j]),
                    "drive_scale": wire_list(sub.drive_scale[j]),
                    "p_delivered": wire_list(sub.p_delivered[j]),
                    "saturated": [bool(v) for v in sub.saturated[j]],
                    "in_window": float(frac[j]),
                    "v_min": float(v_min[j]),
                    "v_max": float(v_max[j]),
                    "mean_drive": float(drive[j]),
                }
                for j, i in enumerate(indices)
            ]
        if kind == "transient":
            return [
                {
                    "label": scenarios[i].label,
                    "v_rect": wire_list(rows[keys[i]]["v_rect"]),
                    "p_in": wire_float(rows[keys[i]]["p_in"]),
                    "i_load": wire_float(rows[keys[i]]["i_load"]),
                    "v_final": wire_float(rows[keys[i]]["v_rect"][-1]),
                }
                for i in indices
            ]
        if kind == "spice":
            return [
                {
                    "label": scenarios[i].label,
                    "template": scenarios[i].template,
                    "amplitude": scenarios[i].amplitude,
                    "freq": scenarios[i].freq,
                    "i_load": scenarios[i].i_load,
                    "v_out": wire_list(rows[keys[i]]["v_out"]),
                    "v_final": wire_float(rows[keys[i]]["v_final"]),
                    "ripple": wire_float(rows[keys[i]]["ripple"]),
                    "steps": int(rows[keys[i]]["steps"]),
                }
                for i in indices
            ]
        return [
            {
                "label": scenarios[i].label,
                "t_charge": wire_float(rows[keys[i]]["t_charge"]),
            }
            for i in indices
        ]

    def _finalize_jobs(self, jobs, plan, rows, cell_docs):
        """Each job's final wire document, assembled from the same
        per-cell documents its streamed chunks carried."""
        shaped = []
        for job, keys, docs in zip(jobs, plan.job_keys, cell_docs):
            request = job.request
            n = 1 if request.kind == "montecarlo" else len(keys)
            missing = [i for i in range(n) if i not in docs]
            if missing:  # never streamed (e.g. no recorder consumer)
                for i, doc in zip(
                    missing, self._cell_docs(request, missing, keys, rows)
                ):
                    docs[i] = doc
            shaped.append(self._result_doc(request, docs))
        return shaped

    def _result_doc(self, request, docs):
        kind = request.kind
        if kind == "montecarlo":
            return docs[0]
        cells = [docs[i] for i in range(len(request.scenarios))]
        if kind == "sweep":
            return {
                "kind": "sweep",
                "t_stop": request.t_stop,
                "times": wire_list(self._times(request)),
                "cells": cells,
            }
        if kind == "transient":
            return {
                "kind": "transient",
                "t_stop": request.t_stop,
                "dt": request.dt,
                "times": wire_list(self._times(request)),
                "cells": cells,
            }
        if kind == "spice":
            return {
                "kind": "spice",
                "t_stop": request.t_stop,
                "dt": request.dt,
                "method": request.method,
                "times": wire_list(self._times(request)),
                "cells": cells,
            }
        return {
            "kind": "battery",
            "p_in": request.p_in,
            "v_target": request.v_target,
            "cells": cells,
        }
