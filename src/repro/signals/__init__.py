"""Sampled-waveform container and signal-processing helpers.

`Waveform` is the common currency between the circuit simulator, the
envelope models, and the communication analysis: a pair of (time, value)
arrays with the operations an analog/mixed-signal flow needs — envelope
extraction, RMS/average, threshold crossings, slicing and resampling.
"""

from repro.signals.waveform import Waveform
from repro.signals.envelope import envelope_peaks, envelope_rectify, moving_average
from repro.signals.measure import (
    crossing_times,
    rise_time,
    settling_time,
    slice_levels,
    duty_cycle,
)

__all__ = [
    "Waveform",
    "envelope_peaks",
    "envelope_rectify",
    "moving_average",
    "crossing_times",
    "rise_time",
    "settling_time",
    "slice_levels",
    "duty_cycle",
]
