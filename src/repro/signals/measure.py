"""Waveform measurements: crossings, rise/settling time, digital slicing."""

from __future__ import annotations

import numpy as np


def crossing_times(waveform, threshold, direction="both"):
    """Times where the waveform crosses ``threshold``.

    ``direction`` is ``"rising"``, ``"falling"`` or ``"both"``.  Crossing
    instants are linearly interpolated between samples.
    """
    if direction not in ("rising", "falling", "both"):
        raise ValueError(f"bad direction {direction!r}")
    v = waveform.v - threshold
    sign = np.sign(v)
    # Treat exact zeros as belonging to the previous sign to avoid double counts.
    for i in range(1, sign.size):
        if sign[i] == 0:
            sign[i] = sign[i - 1]
    change = np.diff(sign)
    rising = np.nonzero(change > 0)[0]
    falling = np.nonzero(change < 0)[0]
    if direction == "rising":
        idx = rising
    elif direction == "falling":
        idx = falling
    else:
        idx = np.sort(np.concatenate((rising, falling)))
    times = []
    for i in idx:
        v0, v1 = v[i], v[i + 1]
        t0, t1 = waveform.t[i], waveform.t[i + 1]
        if v1 == v0:
            times.append(t0)
        else:
            times.append(t0 + (t1 - t0) * (-v0) / (v1 - v0))
    return np.asarray(times)


def rise_time(waveform, low_frac=0.1, high_frac=0.9):
    """10%-90% (by default) rise time of a step-like waveform.

    Levels are referenced to the waveform's initial and final values.
    Returns ``None`` when the waveform never completes the transition.
    """
    v_start, v_end = waveform.v[0], waveform.v[-1]
    span = v_end - v_start
    if span == 0:
        return None
    lo = v_start + low_frac * span
    hi = v_start + high_frac * span
    direction = "rising" if span > 0 else "falling"
    t_lo = crossing_times(waveform, lo, direction)
    t_hi = crossing_times(waveform, hi, direction)
    if t_lo.size == 0 or t_hi.size == 0:
        return None
    later = t_hi[t_hi > t_lo[0]]
    if later.size == 0:
        return None
    return float(later[0] - t_lo[0])


def settling_time(waveform, final_value=None, tolerance=0.01):
    """Time after which the waveform stays within ``tolerance`` (relative)
    of ``final_value`` (default: last sample).  Measured from t_start."""
    if final_value is None:
        final_value = waveform.v[-1]
    band = abs(final_value) * tolerance
    if band == 0:
        band = tolerance
    outside = np.nonzero(np.abs(waveform.v - final_value) > band)[0]
    if outside.size == 0:
        return 0.0
    last_out = outside[-1]
    if last_out + 1 >= waveform.t.size:
        return None  # never settles
    return float(waveform.t[last_out + 1] - waveform.t_start)


def slice_levels(waveform, threshold, sample_times):
    """Slice the waveform into bits: value > threshold -> 1 at each
    ``sample_times`` instant.  Returns a list of ints."""
    samples = waveform.value_at(np.asarray(sample_times, dtype=float))
    return [1 if s > threshold else 0 for s in samples]


def duty_cycle(waveform, threshold=None):
    """Fraction of time the waveform spends above ``threshold``
    (default: midpoint between min and max)."""
    if threshold is None:
        threshold = 0.5 * (waveform.min() + waveform.max())
    above = waveform.v > threshold
    dt = np.diff(waveform.t)
    seg = 0.5 * (above[:-1].astype(float) + above[1:].astype(float))
    return float(np.sum(seg * dt) / waveform.duration)
