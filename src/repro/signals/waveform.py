"""The `Waveform` container: a sampled signal with analysis operations."""

from __future__ import annotations

import math

import numpy as np


class Waveform:
    """A sampled real-valued signal ``v(t)``.

    The time axis must be strictly increasing but need not be uniform —
    adaptive-step transient simulation produces non-uniform output.
    Arithmetic between waveforms resamples the right operand onto the left
    operand's time base via linear interpolation.
    """

    def __init__(self, t, v):
        t = np.asarray(t, dtype=float)
        v = np.asarray(v, dtype=float)
        if t.ndim != 1 or v.ndim != 1:
            raise ValueError("Waveform arrays must be one-dimensional")
        if t.shape != v.shape:
            raise ValueError(
                f"time and value lengths differ: {t.shape} vs {v.shape}"
            )
        if t.size < 2:
            raise ValueError("Waveform needs at least two samples")
        if not np.all(np.diff(t) > 0):
            raise ValueError("Waveform time axis must be strictly increasing")
        self.t = t
        self.v = v

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_function(cls, func, t_start, t_stop, n_samples):
        """Sample ``func(t)`` uniformly on ``[t_start, t_stop]``."""
        t = np.linspace(t_start, t_stop, int(n_samples))
        return cls(t, np.vectorize(func, otypes=[float])(t))

    @classmethod
    def constant(cls, value, t_start, t_stop, n_samples=2):
        """A constant waveform."""
        t = np.linspace(t_start, t_stop, int(n_samples))
        return cls(t, np.full_like(t, float(value)))

    def copy(self):
        """Deep copy."""
        return Waveform(self.t.copy(), self.v.copy())

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    def __len__(self):
        return self.t.size

    @property
    def duration(self):
        """Total spanned time."""
        return float(self.t[-1] - self.t[0])

    @property
    def t_start(self):
        return float(self.t[0])

    @property
    def t_stop(self):
        return float(self.t[-1])

    def value_at(self, time):
        """Linear-interpolated value at ``time`` (scalar or array)."""
        return np.interp(time, self.t, self.v)

    def __call__(self, time):
        return self.value_at(time)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def mean(self):
        """Time-weighted average (trapezoidal)."""
        return float(np.trapezoid(self.v, self.t) / self.duration)

    def rms(self):
        """Time-weighted root-mean-square (trapezoidal)."""
        return float(np.sqrt(np.trapezoid(self.v**2, self.t) / self.duration))

    def min(self):
        return float(self.v.min())

    def max(self):
        return float(self.v.max())

    def peak_to_peak(self):
        return self.max() - self.min()

    def integral(self):
        """Trapezoidal integral of v dt (e.g. charge for a current)."""
        return float(np.trapezoid(self.v, self.t))

    def argmax_time(self):
        """Time of the maximum sample."""
        return float(self.t[int(np.argmax(self.v))])

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def clip_time(self, t_lo, t_hi):
        """Return the sub-waveform on ``[t_lo, t_hi]`` (endpoints
        interpolated in so measurements on the window are exact)."""
        if t_lo >= t_hi:
            raise ValueError("clip_time needs t_lo < t_hi")
        t_lo = max(t_lo, self.t_start)
        t_hi = min(t_hi, self.t_stop)
        mask = (self.t > t_lo) & (self.t < t_hi)
        t = np.concatenate(([t_lo], self.t[mask], [t_hi]))
        v = np.concatenate(
            ([self.value_at(t_lo)], self.v[mask], [self.value_at(t_hi)])
        )
        return Waveform(t, v)

    def resample(self, n_samples=None, dt=None):
        """Resample uniformly with either a sample count or a step."""
        if (n_samples is None) == (dt is None):
            raise ValueError("give exactly one of n_samples or dt")
        if dt is not None:
            n_samples = int(round(self.duration / dt)) + 1
        t = np.linspace(self.t_start, self.t_stop, int(n_samples))
        return Waveform(t, self.value_at(t))

    def shift_time(self, delta):
        """Shift the time axis by ``delta``."""
        return Waveform(self.t + delta, self.v.copy())

    def derivative(self):
        """Numerical derivative dv/dt (gradient)."""
        return Waveform(self.t, np.gradient(self.v, self.t))

    def abs(self):
        return Waveform(self.t, np.abs(self.v))

    def spectrum(self, window="hann", n_fft=None):
        """(frequencies, magnitudes) of the waveform's FFT.

        The waveform is resampled uniformly first (transient output is
        non-uniform); magnitudes are single-sided and normalised so a
        sine of amplitude A shows a peak of ~A (coherent case).
        ``window`` is ``"hann"``, ``"rect"``, or any ndarray.
        """
        n = n_fft or len(self)
        uniform = self.resample(n_samples=n)
        if isinstance(window, str):
            if window == "hann":
                win = np.hanning(n)
            elif window == "rect":
                win = np.ones(n)
            else:
                raise ValueError(f"unknown window {window!r}")
        else:
            win = np.asarray(window, dtype=float)
            if win.size != n:
                raise ValueError("window length mismatch")
        coherent_gain = win.mean()
        spec = np.fft.rfft(uniform.v * win)
        mags = np.abs(spec) / (n * coherent_gain) * 2.0
        mags[0] /= 2.0  # DC is not doubled
        dt = uniform.t[1] - uniform.t[0]
        freqs = np.fft.rfftfreq(n, dt)
        return freqs, mags

    def thd(self, fundamental_freq, n_harmonics=5):
        """Total harmonic distortion (ratio) of a periodic waveform."""
        if fundamental_freq <= 0:
            raise ValueError("fundamental_freq must be positive")
        freqs, mags = self.spectrum()
        df = freqs[1] - freqs[0]

        def bin_power(f):
            k = int(round(f / df))
            if k >= mags.size:
                return 0.0
            lo, hi = max(k - 1, 0), min(k + 2, mags.size)
            return float(np.max(mags[lo:hi])) ** 2

        p1 = bin_power(fundamental_freq)
        if p1 == 0.0:
            raise ValueError("no energy at the fundamental")
        p_h = sum(bin_power(fundamental_freq * k)
                  for k in range(2, n_harmonics + 2))
        return math.sqrt(p_h / p1)

    # ------------------------------------------------------------------
    # Arithmetic (right operand resampled onto left time base)
    # ------------------------------------------------------------------
    def _coerce(self, other):
        if isinstance(other, Waveform):
            return other.value_at(self.t)
        return float(other)

    def __add__(self, other):
        return Waveform(self.t, self.v + self._coerce(other))

    def __radd__(self, other):
        return self.__add__(other)

    def __sub__(self, other):
        return Waveform(self.t, self.v - self._coerce(other))

    def __rsub__(self, other):
        return Waveform(self.t, self._coerce(other) - self.v)

    def __mul__(self, other):
        return Waveform(self.t, self.v * self._coerce(other))

    def __rmul__(self, other):
        return self.__mul__(other)

    def __truediv__(self, other):
        return Waveform(self.t, self.v / self._coerce(other))

    def __neg__(self):
        return Waveform(self.t, -self.v)

    def __repr__(self):
        return (
            f"Waveform({len(self)} pts, t=[{self.t_start:.4g}, "
            f"{self.t_stop:.4g}]s, v=[{self.min():.4g}, {self.max():.4g}])"
        )
