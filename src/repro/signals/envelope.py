"""Envelope extraction for modulated carriers.

The ASK downlink rides on a 5 MHz carrier; the demodulator and the
system-level analyses need the bit-rate-scale envelope.  Two extractors
are provided: a peak-hold detector that mimics the diode/capacitor
demodulator of the paper's Fig. 9, and a rectify-and-filter detector.
"""

from __future__ import annotations

import numpy as np

from repro.signals.waveform import Waveform


def envelope_peaks(waveform, carrier_freq):
    """Peak-per-cycle envelope of a carrier-modulated waveform.

    The waveform is chopped into carrier periods; the absolute maximum of
    each period is one envelope sample, time-stamped at the period centre.
    This mirrors a track-and-hold peak detector clocked at the carrier.
    """
    if carrier_freq <= 0:
        raise ValueError("carrier_freq must be positive")
    period = 1.0 / carrier_freq
    n_cycles = int(np.floor(waveform.duration / period))
    if n_cycles < 2:
        raise ValueError(
            "waveform too short for envelope extraction: "
            f"{waveform.duration:.3g}s < 2 carrier periods"
        )
    edges = waveform.t_start + period * np.arange(n_cycles + 1)
    idx = np.searchsorted(waveform.t, edges)
    times = np.empty(n_cycles)
    values = np.empty(n_cycles)
    av = np.abs(waveform.v)
    for k in range(n_cycles):
        lo, hi = idx[k], max(idx[k + 1], idx[k] + 1)
        seg = av[lo:hi]
        if seg.size == 0:
            seg = av[min(lo, av.size - 1) : min(lo, av.size - 1) + 1]
        values[k] = seg.max()
        times[k] = 0.5 * (edges[k] + edges[k + 1])
    return Waveform(times, values)


def envelope_rectify(waveform, carrier_freq, smoothing_cycles=3.0):
    """Full-wave rectify then single-pole low-pass filter.

    ``smoothing_cycles`` sets the filter time constant in carrier periods.
    The output is scaled by pi/2 so a pure sine of amplitude A yields an
    envelope ~= A in steady state.
    """
    if smoothing_cycles <= 0:
        raise ValueError("smoothing_cycles must be positive")
    uniform = waveform.resample(
        dt=1.0 / (carrier_freq * 32.0)
    )  # 32 pts/cycle is ample for a first-order filter
    tau = smoothing_cycles / carrier_freq
    dt = uniform.t[1] - uniform.t[0]
    alpha = dt / (tau + dt)
    rect = np.abs(uniform.v)
    out = np.empty_like(rect)
    acc = rect[0]
    for i, sample in enumerate(rect):
        acc += alpha * (sample - acc)
        out[i] = acc
    return Waveform(uniform.t, out * (np.pi / 2.0))


def moving_average(waveform, window):
    """Boxcar moving average with a time-domain ``window`` width."""
    if window <= 0:
        raise ValueError("window must be positive")
    uniform = waveform.resample(n_samples=max(len(waveform), 64))
    dt = uniform.t[1] - uniform.t[0]
    n = max(1, int(round(window / dt)))
    kernel = np.ones(n) / n
    padded = np.concatenate(
        (np.full(n - 1, uniform.v[0]), uniform.v)
    )
    smooth = np.convolve(padded, kernel, mode="valid")
    return Waveform(uniform.t, smooth)
