#!/usr/bin/env python3
"""Scaling out the serving tier: backends, workers, streaming, drain.

The storage backend behind the engine's content-addressed results is
pluggable (`repro.storage`), and the serving tier can run several
micro-batching scheduler workers over one shared backend.  This
example:

1. opens a `sqlite://` backend by URI and shows the same cells land
   under the same content addresses a `dir://` backend files them
   under (switching backends can never change a result),
2. starts a `SimulationService` with two scheduler workers sharing
   that backend and pushes a closed-loop load with overlapping
   interest — each distinct cell is computed exactly once *across*
   workers,
3. consumes a job's results as a stream (`iter_results`) and checks
   the chunks reassemble to exactly the final document, and
4. drains the service for shutdown: in-flight jobs finish, new
   submits are rejected with the typed 503 error.

Run:  python examples/multi_worker_serve.py
"""

import asyncio
import tempfile
from pathlib import Path

import numpy as np

from repro import RemotePoweringSystem
from repro.core import AdaptivePowerController
from repro.engine import ScenarioBatch, SweepOrchestrator
from repro.engine.parallel import control_cell_keys
from repro.service import (
    LoadGenerator,
    ServiceClient,
    ServiceUnavailableError,
    SimRequest,
    SimulationService,
)
from repro.storage import open_backend

T_STOP = 20e-3


async def main():
    print("=" * 64)
    print("Multi-worker serving tier - storage backends + streaming")
    print("=" * 64)

    system = RemotePoweringSystem(distance=10e-3)
    controller = AdaptivePowerController()
    root = Path(tempfile.mkdtemp(prefix="repro-mw-"))

    # --- 1. pluggable backends, one address space ------------------------
    batch = ScenarioBatch.from_axes(distance=[8e-3, 12e-3],
                                    i_load=[352e-6])
    for uri in (f"dir://{root}/cells-dir", f"sqlite://{root}/cells-sq"):
        SweepOrchestrator(store=uri).run_control(
            batch, system, controller, T_STOP)
    keys = control_cell_keys(batch, system, controller, T_STOP)
    with open_backend(f"dir://{root}/cells-dir") as store_dir, \
            open_backend(f"sqlite://{root}/cells-sq") as store_sq:
        same = all(
            np.array_equal(store_dir.get(k)["v_rect"],
                           store_sq.get(k)["v_rect"])
            for k in keys)
    print(f"\n[1] dir:// and sqlite:// backends hold "
          f"{'identical' if same else 'DIFFERENT'} rows under the "
          f"same {len(keys)} content addresses")
    assert same

    # --- 2. two scheduler workers, one shared backend --------------------
    service = SimulationService(
        system=system, controller=controller,
        store=f"sqlite://{root}/serving-cells",
        scheduler_workers=2, window=5e-3)
    client = ServiceClient(service)
    await service.start()          # warms the worker process pool
    distances = np.linspace(7e-3, 18e-3, 12)
    payloads = [{"kind": "sweep", "t_stop": T_STOP,
                 "axes": {"distance": [float(distances[k % 12])],
                          "i_load": [352e-6]}}
                for k in range(48)]
    summary = await LoadGenerator(client, payloads, concurrency=8).run()
    batching = service.stats()["batching"]
    print(f"\n[2] 48 requests over 12 distinct cells through 2 "
          f"scheduler workers:")
    print(f"    completed {summary['completed']}/48 at "
          f"{summary['throughput_rps']:.0f} req/s")
    print(f"    cells computed {batching['cells_computed']} "
          f"(deduped {batching['cells_deduped']}, cached "
          f"{batching['cells_cached']}) - every distinct cell "
          f"computed once across workers")

    # --- 3. streaming results --------------------------------------------
    wide = {"kind": "sweep", "t_stop": T_STOP,
            "axes": {"distance": [float(d) for d in distances[:6]],
                     "i_load": [352e-6]}}
    job_id = await client.submit(wide)
    cells = {}
    async for chunk in client.iter_results(job_id):
        for idx, cell in zip(chunk["cell_indices"], chunk["cells"]):
            cells[idx] = cell
    final = await client.result(job_id)
    streamed = [cells[i] for i in sorted(cells)]
    print(f"\n[3] streamed {len(cells)} cells in chunks; reassembled "
          f"{'== final result (bitwise)' if streamed == final['cells'] else 'MISMATCH'}")
    assert streamed == final["cells"]

    # --- 4. graceful drain ------------------------------------------------
    last_id = await client.submit(payloads[0])
    drain = await service.drain(timeout=10.0)
    try:
        await client.submit(payloads[1])
        print("\n[4] drain FAILED to reject new submits")
    except ServiceUnavailableError as exc:
        print(f"\n[4] drained {drain['drained_jobs']} in-flight job(s) "
              f"in {drain['drain_elapsed_s']:.3f} s "
              f"(clean={drain['drain_clean']}); new submits rejected:\n"
              f"    ServiceUnavailableError: {exc}")
    await client.result(last_id)   # the drained job still answered
    await service.stop()
    print("\nDone.")


if __name__ == "__main__":
    asyncio.run(main())
