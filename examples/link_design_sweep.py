#!/usr/bin/env python3
"""Inductive-link design exploration: coils, distance, misalignment,
tissue, and the matching network.

Answers the questions a designer adopting this system would ask first:
how much power reaches the implant as the patch moves or tilts, how the
receiving-coil geometry trades against it, and what CA/CB to fit.
"""

import numpy as np

from repro.core import PAPER
from repro.link import (
    CircularSpiral,
    InductiveLink,
    RectangularSpiral,
    TissueLayer,
    design_l_match,
)
from repro.util import format_eng


def header(title):
    print()
    print(title)
    print("-" * len(title))


def main():
    tx = CircularSpiral.ironic_transmitter()
    rx = RectangularSpiral.ironic_receiver()

    header("Coil electrical parameters at 5 MHz")
    for name, coil in (("TX (patch)", tx), ("RX (implant)", rx)):
        s = coil.summary(PAPER.carrier_freq)
        print(f"  {name:<13s} L={format_eng(s['inductance_h'], 'H'):>9s}"
              f"  R={s['resistance_ohm']:5.2f} ohm  Q={s['q']:5.1f}"
              f"  SRF={format_eng(s['self_resonance_hz'], 'Hz')}")

    link = InductiveLink(tx, rx, PAPER.carrier_freq)
    i_tx = link.calibrate_drive(PAPER.power_at_6mm, PAPER.rx_test_distance)

    header("Received power vs distance (air)")
    print(f"  {'d (mm)':>7s} {'k':>8s} {'M (nH)':>8s} {'P (mW)':>8s} "
          f"{'eta_max (%)':>12s}")
    for d in np.arange(2e-3, 22e-3, 2e-3):
        pt = link.operating_point(i_tx, d)
        print(f"  {d * 1e3:7.0f} {pt.coupling:8.4f} "
              f"{pt.mutual_inductance * 1e9:8.1f} "
              f"{pt.available_power * 1e3:8.2f} "
              f"{link.max_efficiency(d) * 100:12.1f}")

    header("Lateral misalignment at 10 mm depth")
    for offset in (0.0, 4e-3, 8e-3, 12e-3, 16e-3):
        p = link.available_power(i_tx, 10e-3, lateral_offset=offset)
        print(f"  offset {offset * 1e3:4.0f} mm -> "
              f"{p * 1e3:6.2f} mW")

    header("Tissue vs air at 17 mm (the beef-sirloin experiment)")
    for tissue in ("air", "skin", "fat", "muscle", "sirloin"):
        layers = [] if tissue == "air" else [TissueLayer(tissue, 17e-3)]
        tlink = InductiveLink(tx, rx, PAPER.carrier_freq, layers)
        p = tlink.available_power(i_tx, 17e-3)
        print(f"  {tissue:<8s}: {p * 1e3:5.2f} mW")

    header("Receiving-coil geometry trade (same 38x2 mm footprint)")
    print(f"  {'layers':>7s} {'turns':>6s} {'L (uH)':>7s} {'Q':>6s} "
          f"{'P @10mm (mW)':>13s}")
    for layers, turns in ((2, 4), (4, 8), (8, 14), (8, 20)):
        coil = RectangularSpiral(38e-3, 2e-3, turns, n_layers=layers,
                                 layer_pitch=0.544e-3 / max(layers, 1),
                                 turn_pitch=220e-6)
        vlink = InductiveLink(tx, coil, PAPER.carrier_freq)
        i2 = vlink.calibrate_drive(PAPER.power_at_6mm,
                                   PAPER.rx_test_distance)
        p10 = vlink.available_power(i2, 10e-3)
        print(f"  {layers:7d} {turns:6d} "
              f"{coil.inductance() * 1e6:7.2f} "
              f"{coil.quality_factor(PAPER.carrier_freq):6.1f} "
              f"{p10 * 1e3:13.2f}")

    header("Matching network (CA/CB) for the 150-ohm rectifier")
    match = design_l_match(link.r_rx, link.omega * link.l_rx,
                           PAPER.rectifier_input_resistance,
                           PAPER.carrier_freq)
    print(f"  CA (series)   = {format_eng(match.c_series, 'F')}")
    print(f"  CB (parallel) = {format_eng(match.c_parallel, 'F')}")
    print(f"  residual match error = {match.match_error():.2e}")
    print(f"  loaded Q = {match.q_factor():.2f}")


if __name__ == "__main__":
    main()
