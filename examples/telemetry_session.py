#!/usr/bin/env python3
"""A full duplex telemetry session at the waveform level.

Shows the physical layer the paper describes doing real work: an ASK
command frame rides the 5 MHz carrier down to the implant's switched
demodulator, the implant answers by load-shift keying its rectifier
input, and the patch's threshold detector recovers the frame — with CRC
protection end to end, then a noisy-channel stress run.
"""

import numpy as np

from repro.comms import (
    AskDemodulator,
    AskModulator,
    Frame,
    LinkProtocol,
    LskDetector,
    LskModulator,
)


def waveform_level_exchange():
    print("[1] Waveform-level exchange")
    # ---- downlink: command frame over ASK ------------------------------
    command = Frame(b"\x01SET_VOX=650mV")
    bits_down = command.encode()
    mod = AskModulator(depth=0.42, bit_rate=100e3)
    carrier = mod.waveform(bits_down, delay=20e-6, idle_time=20e-6,
                           samples_per_cycle=12)
    demod = AskDemodulator(bit_rate=100e3)
    got_bits, _, thr = demod.demodulate(carrier, len(bits_down), 20e-6)
    decoded = Frame.decode(got_bits)
    print(f"    downlink frame : {len(bits_down)} bits over ASK "
          f"({carrier.duration * 1e6:.0f} us of carrier)")
    print(f"    demod threshold: {thr:.3f} (adaptive)")
    print(f"    decoded payload: {decoded.payload!r}  "
          f"[CRC {'ok' if decoded == command else 'FAIL'}]")

    # ---- uplink: response frame over LSK --------------------------------
    response = Frame(b"\x10VOX_OK\x02\x8a")
    bits_up = response.encode()
    lsk = LskModulator(bit_rate=66.6e3)
    i_sense = lsk.supply_current_waveform(
        bits_up, i_high=59e-3, i_low=52e-3, start_time=10e-6,
        noise_rms=0.4e-3, rng=np.random.default_rng(11))
    det = LskDetector(r_sense=1.0)
    got_up, threshold = det.detect(i_sense, len(bits_up), 10e-6,
                                   bit_rate=66.6e3)
    decoded_up = Frame.decode(got_up)
    print(f"    uplink frame   : {len(bits_up)} bits over LSK "
          f"(threshold {threshold * 1e3:.1f} mA on R9)")
    print(f"    decoded payload: {decoded_up.payload!r}  "
          f"[CRC {'ok' if decoded_up == response else 'FAIL'}]")
    print(f"    max uplink rate: {det.max_bit_rate(2) / 1e3:.1f} kbps "
          f"(threshold-check limited; paper uses 66.6)")


def protocol_level_session():
    print("\n[2] Protocol-level measurement readout (clean channel)")
    proto = LinkProtocol()
    data, log = proto.measurement_session(n_samples=512,
                                          bytes_per_sample=2)
    print(f"    transferred {len(data)} bytes in "
          f"{log.total_time * 1e3:.1f} ms "
          f"({log.throughput(len(data)) / 1e3:.1f} kbit/s effective)")
    print(f"    downlink airtime {log.downlink_time * 1e3:.2f} ms, "
          f"uplink airtime {log.uplink_time * 1e3:.2f} ms")

    print("\n[3] Noisy channel (BER 5e-4) with retry-on-CRC")
    # At this BER a 255-byte frame is a coin toss; 32-byte chunks keep
    # the per-frame success probability high at a small framing cost.
    noisy = LinkProtocol(ber=5e-4, max_retries=8, seed=4)
    data, log = noisy.measurement_session(n_samples=256,
                                          bytes_per_sample=2,
                                          chunk_bytes=32)
    print(f"    transferred {len(data)} bytes with "
          f"{log.crc_failures} CRC failures / {log.retries} retries")
    print(f"    effective throughput "
          f"{log.throughput(len(data)) / 1e3:.1f} kbit/s")


if __name__ == "__main__":
    waveform_level_exchange()
    protocol_level_session()
