#!/usr/bin/env python3
"""Patch battery planning: scenario lives, duty-cycling, and sizing.

Reproduces the paper's Section III-B battery figures and extends them to
the question a clinician would ask: "how long does the patch last if it
powers the implant N minutes per hour and syncs to my phone M minutes
per hour?" — plus battery sizing for a target wear time.
"""

import numpy as np

from repro.patch import IronicPatch, LiIonBattery


def main():
    patch = IronicPatch()

    print("Scenario battery life (paper Section III-B)")
    print("-" * 52)
    paper_values = {"idle": 10.0, "connected": 3.5, "powering": 1.5}
    for name, hours in patch.battery_life_table().items():
        print(f"  {name:<10s}: {hours:5.2f} h   (paper ~{paper_values[name]:.1f} h)"
              f"   [{patch.scenario_current(name) * 1e3:5.1f} mA]")

    print("\nDuty-cycled monitoring (per-hour duty fractions)")
    print("-" * 52)
    print(f"  {'powering':>9s} {'connected':>10s} {'life (h)':>9s}")
    for duty_p, duty_c in ((0.05, 0.02), (0.10, 0.05), (0.25, 0.10),
                           (0.50, 0.25), (1.00, 0.00)):
        if duty_p + duty_c > 1.0:
            continue
        life = patch.monitoring_session_life(duty_p, duty_c)
        print(f"  {duty_p * 100:8.0f}% {duty_c * 100:9.0f}% {life:9.2f}")

    print("\nBattery sizing for a 24 h wear at 10%/5% duty")
    print("-" * 52)
    for cap_mah in (110, 250, 500, 1000):
        battery = LiIonBattery(capacity_ah=cap_mah * 1e-3)
        sized = IronicPatch(battery=battery)
        life = sized.monitoring_session_life(0.10, 0.05)
        flag = "<-- first fit" if life >= 24 else ""
        print(f"  {cap_mah:5d} mAh ({battery.mass_grams():4.1f} g): "
              f"{life:6.1f} h  {flag}")

    print("\nDischarge trace: a 2 h session at 25%/10% duty")
    print("-" * 52)
    battery = LiIonBattery(capacity_ah=0.110)
    session = IronicPatch(battery=battery)
    i_avg = (0.25 * session.scenario_current("powering")
             + 0.10 * session.scenario_current("connected")
             + 0.65 * session.scenario_current("idle"))
    for step in range(5):
        v = battery.terminal_voltage(i_avg)
        print(f"  t={step * 0.5:3.1f} h  SOC={battery.soc * 100:5.1f}%  "
              f"V={v:4.2f} V")
        if step < 4:
            battery.discharge(i_avg, 0.5)


if __name__ == "__main__":
    main()
