#!/usr/bin/env python3
"""Batched scenario sweeps on the unified simulation engine.

The same adaptive-power control loop that `repro.core.control` runs for
one implant can be evaluated for a whole grid of scenarios — coil
separations x implant loads x carrier duty cycles — as one vectorized
numpy computation through `repro.engine.ScenarioBatch`.  This example:

1. sweeps an 8 x 8 distance x load grid (64 scenarios) in one batch,
2. prints the regulation map (which scenarios keep the rail in-window),
3. times the batch against the equivalent loop of scalar
   `AdaptivePowerController.run` calls and reports the speedup,
4. shows a duty-cycled corner of the grid (power-saving operation),
5. re-runs a physical-axes grid through the `SweepOrchestrator` with a
   content-addressed result store (the second pass hits every cell),
6. serves part of the same grid through the `repro.service` layer —
   concurrent clients coalesced into one engine batch.

Run:  python examples/batch_sweep.py
"""

import asyncio
import tempfile
import time

import numpy as np

from repro import PAPER, RemotePoweringSystem
from repro.core import AdaptivePowerController
from repro.engine import (
    ResultStore,
    Scenario,
    ScenarioBatch,
    SweepOrchestrator,
)


def main():
    print("=" * 64)
    print("Vectorized scenario sweeps — repro.engine.ScenarioBatch")
    print("=" * 64)

    system = RemotePoweringSystem(distance=10e-3)
    controller = AdaptivePowerController()
    t_stop = 40e-3

    # --- 1. the batch -----------------------------------------------------
    distances = np.linspace(6e-3, 20e-3, 8)
    loads = np.linspace(200e-6, PAPER.i_sensor_high_power, 8)
    batch = ScenarioBatch.from_grid(distances, loads)
    print(f"\n[1] {len(batch)} scenarios "
          f"({distances.size} distances x {loads.size} loads), "
          f"{int(round(t_stop / controller.update_period))} control steps")

    t0 = time.perf_counter()
    result = batch.run_control(system, controller, t_stop)
    t_batch = time.perf_counter() - t0
    frac, v_min, v_max, drive = result.regulation_statistics()

    # --- 2. the regulation map --------------------------------------------
    print("\n[2] Regulation map (fraction of settled steps in-window)")
    header = "    d\\I " + "".join(f"{i * 1e6:>8.0f}uA" for i in loads)
    print(header)
    for r, d in enumerate(distances):
        row = frac[r * loads.size:(r + 1) * loads.size]
        cells = "".join(f"{f:>10.2f}" for f in row)
        print(f"    {d * 1e3:4.1f}mm{cells}")
    ok = int((frac > 0.9).sum())
    print(f"    {ok}/{len(batch)} scenarios hold the rail in-window "
          f">90% of settled steps")

    # --- 3. batch vs scalar loop ------------------------------------------
    print("\n[3] Batch vs scalar-loop timing (same physics, same traces)")
    t0 = time.perf_counter()
    for sc in batch.scenarios[:8]:          # a slice is enough to time
        controller.run(system, lambda t, d=sc.distance: d, t_stop)
    t_scalar = (time.perf_counter() - t0) * len(batch) / 8
    print(f"    scalar loop (extrapolated from 8 runs): {t_scalar:8.3f} s")
    print(f"    ScenarioBatch ({len(batch)} at once)  : {t_batch:8.3f} s")
    print(f"    speedup: {t_scalar / t_batch:.1f}x")

    # --- 4. duty-cycled corner --------------------------------------------
    print("\n[4] Duty-cycling the carrier at 10 mm (power saving)")
    duties = (1.0, 0.8, 0.6, 0.4, 0.2)
    duty_batch = ScenarioBatch(
        [Scenario(distance=10e-3, duty_cycle=dc, label=f"duty={dc}")
         for dc in duties])
    duty_res = duty_batch.run_control(system, controller, t_stop)
    frac_d, v_min_d, _, drive_d = duty_res.regulation_statistics()
    for i, dc in enumerate(duties):
        print(f"    duty {dc:4.1f}: in-window {frac_d[i]:5.2f}, "
              f"min Vo {v_min_d[i]:5.2f} V, mean drive {drive_d[i]:5.2f}"
              f"{'  <- loop compensates' if dc < 1 and frac_d[i] > 0.9 else ''}")

    # --- 5. orchestrated physical-axes sweep with a result store ----------
    print("\n[5] Orchestrated sweep: physical axes + content-addressed cache")
    grid = ScenarioBatch.from_axes(
        distance=[8e-3, 12e-3, 17e-3],
        i_load=[352e-6, 1.3e-3],
        tissue=["air", "muscle"],           # link path composition
        temperature=[33.0, 41.0])           # bandgap / thermal headroom
    with tempfile.TemporaryDirectory() as cache_dir:
        orch = SweepOrchestrator(workers=2,
                                 store=ResultStore(cache_dir))
        orch.run_control(grid, system, controller, t_stop=20e-3)
        print(f"    cold: {orch.stats.summary()}")
        orch.run_control(grid, system, controller, t_stop=20e-3)
        print(f"    warm: {orch.stats.summary()}")
    physical = grid.physical_report(system)
    hot = int((~physical["thermal_ok"]).sum())
    print(f"    physical report: P in "
          f"[{physical['p_available'].min() * 1e3:.2f}, "
          f"{physical['p_available'].max() * 1e3:.2f}] mW, "
          f"{hot}/{len(grid)} cells exceed thermal headroom")

    # --- 6. the same physics, served -------------------------------------
    print("\n[6] Serving the grid: concurrent clients, one engine batch")
    asyncio.run(serve_corner(system, controller))

    print("\nDone.")


async def serve_corner(system, controller):
    """Eight 'clients' each ask for one distance; the service layer
    coalesces the co-arriving requests into one vectorized batch (see
    examples/serve_load_test.py for the full serving tour)."""
    from repro.service import ServiceClient, SimulationService

    service = SimulationService(system=system, controller=controller,
                                window=10e-3)
    client = ServiceClient(service)
    async with service:
        ids = await asyncio.gather(*(
            client.submit({"kind": "sweep", "t_stop": 20e-3,
                           "axes": {"distance": [float(d)],
                                    "i_load": [352e-6]}})
            for d in np.linspace(6e-3, 20e-3, 8)))
        results = await asyncio.gather(*(client.result(i)
                                         for i in ids))
    stats = service.scheduler.stats
    worst = min(r["cells"][0]["in_window"] for r in results)
    print(f"    8 concurrent requests -> {stats.batches} engine "
          f"batch(es), worst in-window fraction {worst:.2f}")


if __name__ == "__main__":
    main()
