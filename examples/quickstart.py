#!/usr/bin/env python3
"""Quickstart: power an implanted lactate sensor through the skin.

Builds the paper's full system — IronIC patch, 5 MHz inductive link,
implanted power management + biosensor — places the implant 10 mm under
the patch, and runs one complete remote measurement.

Run:  python examples/quickstart.py
"""

from repro import PAPER, RemotePoweringSystem
from repro.util import format_eng


def main():
    print("=" * 64)
    print("Electronic Implants: Power Delivery and Management")
    print("Olivo et al., DATE 2013 — reproduction quickstart")
    print("=" * 64)

    system = RemotePoweringSystem(distance=10e-3)

    # --- power delivery ------------------------------------------------
    print("\n[1] Power delivery through the body")
    for d_mm in (6, 10, 17):
        p = system.available_power(d_mm * 1e-3)
        print(f"    {d_mm:>2d} mm separation -> "
              f"{format_eng(p, 'W'):>10s} available to the implant")
    print(f"    (paper anchors: 15 mW @ 6 mm, ~5 mW @ 10 mm, "
          f"~1.17 mW @ 17 mm)")

    # --- implant startup -----------------------------------------------
    print("\n[2] Implant cold start at 10 mm")
    t_ready = system.startup()
    print(f"    storage capacitor charged, rail regulated at "
          f"{PAPER.v_supply_sensor} V after {t_ready * 1e6:.0f} us")

    # --- the measurement -----------------------------------------------
    print("\n[3] Remote lactate measurement")
    concentration_mm = 0.8  # mM, mid-range of the paper's Fig. 4
    result = system.measure_lactate(concentration_mm)
    print(f"    true concentration      : {concentration_mm:.3f} mM")
    print(f"    ADC code ({PAPER.adc_bits}-bit)       : "
          f"{result['adc_code']}")
    print(f"    reported concentration  : "
          f"{result['concentration_reported']:.3f} mM")

    # --- bidirectional communication ------------------------------------
    print("\n[4] Fig. 11 communication check")
    fig11 = system.fig11_transient()
    print(f"    Co reaches 2.75 V at    : "
          f"{fig11.charge_time_to_2v75 * 1e6:.0f} us  (paper: 270 us)")
    print(f"    18-bit downlink (ASK)   : "
          f"{'recovered' if fig11.downlink_ok else 'FAILED'} @ 100 kbps")
    print(f"    uplink (LSK)            : "
          f"{'recovered' if fig11.uplink_ok else 'FAILED'}")
    print(f"    rectifier output minimum: "
          f"{fig11.v_min_during_comms:.2f} V  (rule: >= 2.1 V)")

    # --- patch battery --------------------------------------------------
    print("\n[5] Patch battery life")
    for name, hours in system.patch.battery_life_table().items():
        print(f"    {name:<10s}: {hours:.1f} h")
    print("    (paper: ~10 h idle, ~3.5 h connected, ~1.5 h powering)")


if __name__ == "__main__":
    main()
