#!/usr/bin/env python3
"""Extensions working together: adaptive powering, secure telemetry,
and a thermal audit — a day-in-the-life run the paper's future-work
section points toward.

The wearer moves, so the coil separation wanders between 7 and 15 mm.
The closed-loop controller (the ref [17] idea) keeps the implant's rail
in its window; measurements travel through the authenticated-encrypted
channel (the Section I security requirement); a thermal check guards the
Section I heating requirement at the worst-case drive.
"""

import math

from repro.comms import paired_channels
from repro.core import AdaptivePowerController, RemotePoweringSystem
from repro.link import TISSUE_LIBRARY
from repro.power import implant_thermal_check

SHARED_KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")


def wandering_distance(t):
    """Coil separation over a 0.2 s window: breathing + posture shift."""
    breathing = 1.5e-3 * math.sin(2 * math.pi * 5.0 * t)
    posture = 3e-3 if t > 0.1 else 0.0
    return 10e-3 + breathing + posture


def main():
    system = RemotePoweringSystem(distance=10e-3)
    controller = AdaptivePowerController()

    print("[1] Closed-loop powering against a moving implant")
    steps = controller.run(system, wandering_distance, t_stop=0.2)
    frac, v_min, v_max, mean_drive = \
        controller.regulation_statistics(steps)
    print(f"    rail inside [2.1, 3.3] V : {frac * 100:.1f}% of the time")
    print(f"    Vo range                 : {v_min:.2f} .. {v_max:.2f} V")
    print(f"    mean drive scale         : {mean_drive:.2f} "
          f"(1.0 = fixed calibration)")
    worst_drive = max(s.drive_scale for s in steps)

    print("\n[2] Thermal audit at the worst-case drive")
    audit = implant_thermal_check(
        p_received=system.available_power(7e-3) * worst_drive**2,
        p_delivered_to_load=0.63e-3,
        i_tx_amplitude=system.i_tx * worst_drive,
        coil_radius=system.link.coil_tx.outer_radius,
        coil_turns=4,
        distance=7e-3,
        tissue=TISSUE_LIBRARY["muscle"])
    print(f"    implant dissipation      : "
          f"{audit.p_dissipated * 1e3:.2f} mW")
    print(f"    tissue temperature rise  : {audit.temp_rise:.3f} degC "
          f"(limit 1.0)")
    print(f"    field SAR                : {audit.sar * 1e3:.3f} mW/kg "
          f"(limit 2000)")
    print(f"    verdict                  : "
          f"{'PASS' if audit.ok else 'FAIL'}")

    print("\n[3] Secure measurement telemetry")
    implant_side, patch_side = paired_channels(SHARED_KEY)
    for k, concentration in enumerate((0.6, 0.9, 1.4)):
        result = system.measure_lactate(concentration,
                                        n_output_samples=2)
        code = result["adc_code"]
        payload = code.to_bytes(2, "big")
        wire = implant_side.seal(payload)
        received = patch_side.open(wire)
        decoded = int.from_bytes(received, "big")
        back = system.implant.report_concentration(decoded)
        print(f"    sample {k}: true {concentration:.2f} mM -> "
              f"code {code} -> {len(wire)}B wire -> "
              f"reported {back:.2f} mM [auth ok]")

    print("\n[4] Tamper / replay demonstration")
    wire = implant_side.seal(b"\x11\x22")
    corrupted = bytearray(wire)
    corrupted[5] ^= 0x01
    try:
        patch_side.open(bytes(corrupted))
    except ValueError as exc:
        print(f"    corrupted frame rejected : {exc}")
    patch_side.open(wire)
    try:
        patch_side.open(wire)
    except ValueError as exc:
        print(f"    replayed frame rejected  : {exc}")


if __name__ == "__main__":
    main()
