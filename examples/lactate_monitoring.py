#!/usr/bin/env python3
"""Continuous lactate monitoring through a workout — the paper's
motivating application (Section I: "the lactate concentration ... can be
recorded to monitor the muscular effort in sportsmen or people under
rehabilitation").

A synthetic exercise session drives the subcutaneous lactate level
through rest -> effort -> recovery; the implant is measured remotely
every 30 s; the patch forwards each reading over bluetooth.  The script
reports tracking accuracy and the patch energy spent.
"""

import math

from repro import RemotePoweringSystem
from repro.comms import LinkProtocol


def lactate_profile(t_minutes):
    """Blood/interstitial lactate (mM) over a 40-minute session.

    Rest baseline ~0.9 mM; a 15-minute effort pushes toward ~7 mM
    (anaerobic threshold territory); exponential recovery afterwards.
    """
    rest = 0.9
    if t_minutes < 5.0:
        return rest
    if t_minutes < 20.0:
        effort = (t_minutes - 5.0) / 15.0
        return rest + 6.1 * effort**1.5
    peak = rest + 6.1
    return rest + (peak - rest) * math.exp(-(t_minutes - 20.0) / 8.0)


def main():
    print("Continuous lactate monitoring session (40 min, 30 s cadence)")
    print("-" * 66)

    system = RemotePoweringSystem(distance=10e-3)
    protocol = LinkProtocol()  # 100 kbps down / 66.6 kbps up
    bt = system.patch.radio

    rows = []
    bt_energy = 0.0
    worst_err = 0.0
    for k in range(0, 81):  # every 30 s
        t_min = k * 0.5
        true_mm = lactate_profile(t_min)
        result = system.measure_lactate(true_mm, n_output_samples=2)
        reported = result["concentration_reported"]
        worst_err = max(worst_err, abs(reported - true_mm) / true_mm)
        # Telemetry: command down, 2-byte code up.
        _, _, log = protocol.exchange(b"\x01m", b"\x00\x00")
        bt_energy += bt.energy_per_measurement(2 + 16)
        if k % 10 == 0:
            rows.append((t_min, true_mm, reported,
                         log.total_time * 1e3))

    print(f"{'t (min)':>8s} {'true (mM)':>10s} {'reported':>10s} "
          f"{'link time (ms)':>15s}")
    for t_min, true_mm, reported, link_ms in rows:
        print(f"{t_min:8.1f} {true_mm:10.2f} {reported:10.2f} "
              f"{link_ms:15.2f}")

    print("-" * 66)
    print(f"worst relative tracking error : {worst_err * 100:.2f} %")
    print(f"bluetooth energy for session  : {bt_energy * 1e3:.1f} mJ")
    life = system.patch.monitoring_session_life(duty_powering=0.10,
                                                duty_connected=0.05)
    print(f"patch life at this duty cycle : {life:.1f} h "
          f"(10% powering, 5% connected)")


if __name__ == "__main__":
    main()
