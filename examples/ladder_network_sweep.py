#!/usr/bin/env python3
"""A 200+-node ladder network through the sparse SPICE solver stack.

A distributed rectifier — an RC transmission-line ladder with a
rectifying diode tap at every node, all taps feeding one smoothed
output rail — is the kind of circuit the dense adaptive backend
handles worst: hundreds of MNA unknowns, restamped and LU-factorized
per Newton iteration.  This example:

1. builds the 200-section ladder (203 MNA unknowns),
2. runs it dense vs sparse on the identical pinned grid and reports
   the speedup, the max deviation, and the factorization-reuse
   counters of the frozen-CSR strategy,
3. shows `matrix="auto"` picking the sparse strategy for the ladder
   and the dense one for a small RC cell,
4. sweeps the ladder's drive amplitude as a lockstep family through
   `transient_batch(matrix="sparse")` — one symbolic analysis shared
   by every cell.

Run:  PYTHONPATH=src python examples/ladder_network_sweep.py
"""

import time

import numpy as np

from repro.spice import (
    Circuit,
    analyze_circuit,
    sine,
    transient,
    transient_batch,
)
from repro.spice.assembler import SPARSE_AVAILABLE, SPARSE_AUTO_THRESHOLD

SECTIONS = 200
R_SECTION = 5.0
C_SECTION = 20e-12
C_OUT = 100e-9
R_LOAD = 10e3
FREQ = 5e6
DT = 2e-9
T_STOP = 0.4e-6


def build_ladder(amplitude=2.0):
    ckt = Circuit(f"ladder{SECTIONS}")
    ckt.add_vsource("V1", "n0", "0", sine(amplitude, FREQ))
    for k in range(SECTIONS):
        ckt.add_resistor(f"R{k}", f"n{k}", f"n{k + 1}", R_SECTION)
        ckt.add_capacitor(f"C{k}", f"n{k + 1}", "0", C_SECTION, ic=0.0)
        ckt.add_diode(f"D{k}", f"n{k + 1}", "vo")
    ckt.add_capacitor("Co", "vo", "0", C_OUT, ic=0.0)
    ckt.add_resistor("RL", "vo", "0", R_LOAD)
    return ckt


def run(matrix, stats=None):
    # Pinning min_dt = max_dt keeps both strategies on the identical
    # accepted time grid, so the comparison is pure per-step cost.
    return transient(build_ladder(), T_STOP, DT, method="adaptive",
                     use_ic=True, min_dt=DT, max_dt=DT, matrix=matrix,
                     stats_out=stats)


def main():
    print("=" * 64)
    print("Sparse SPICE solver stack — 200-section ladder network")
    print("=" * 64)

    if not SPARSE_AVAILABLE:
        print("scipy.sparse is unavailable; the sparse strategy is "
              "disabled on this interpreter.  Exiting.")
        return

    ladder = build_ladder()
    ladder.build()
    print(f"\n[1] {SECTIONS}-section ladder: {ladder.n_unknowns} MNA "
          f"unknowns, {len(ladder.components)} components "
          f"({SECTIONS} diode taps)")

    # Static pre-flight: the same analyzer `transient()` runs under
    # check="error", invoked explicitly so a broken edit to the
    # builder fails here with a named SP1xx code, not a
    # ConvergenceError minutes into the dense run.
    findings = analyze_circuit(ladder)
    print(f"    static lint: {len(findings)} finding(s)")
    for d in findings:
        print(f"      {d.format()}")
    if any(d.severity == "error" for d in findings):
        print("    circuit is ill-posed; aborting before any solve.")
        return

    # --- 2. dense vs sparse on the identical grid -------------------------
    print("\n[2] Dense vs sparse adaptive transient (pinned grid)")
    t0 = time.perf_counter()
    dense = run("dense")
    t_dense = time.perf_counter() - t0

    stats = {}
    t0 = time.perf_counter()
    sparse = run("sparse", stats)
    t_sparse = time.perf_counter() - t0

    assert np.array_equal(dense.t, sparse.t)
    deviation = float(np.max(np.abs(
        dense.voltage("vo").v - sparse.voltage("vo").v)))
    print(f"    dense adaptive : {t_dense:7.3f} s  (per-iteration "
          f"dense LU of a {ladder.n_unknowns}x{ladder.n_unknowns} matrix)")
    print(f"    sparse adaptive: {t_sparse:7.3f} s  (frozen CSR "
          f"pattern + SuperLU symbolic reuse)")
    print(f"    speedup {t_dense / t_sparse:5.1f}x, max |vo| deviation "
          f"{deviation:.2e} V on {dense.t.size} shared time points")
    print(f"    solver counters: {stats['factorizations']} numeric "
          f"factorizations, {stats['pattern_reuses']} pattern reuses")

    # --- 3. auto selection ------------------------------------------------
    print(f"\n[3] matrix='auto' (threshold: {SPARSE_AUTO_THRESHOLD} "
          f"unknowns, diode-only nonlinearities)")
    auto_stats = {}
    run("auto", auto_stats)
    picked = "sparse" if auto_stats["pattern_reuses"] else "dense"
    print(f"    ladder ({ladder.n_unknowns} unknowns) -> {picked}")

    rc = Circuit("rc")
    rc.add_vsource("V1", "in", "0", sine(1.0, FREQ))
    rc.add_resistor("R1", "in", "out", 1e3)
    rc.add_capacitor("C1", "out", "0", 1e-9, ic=0.0)
    rc_stats = {}
    transient(rc, T_STOP, DT, method="adaptive", use_ic=True,
              matrix="auto", stats_out=rc_stats)
    rc.build()
    picked = "sparse" if rc_stats["pattern_reuses"] else "dense"
    print(f"    RC cell ({rc.n_unknowns} unknowns) -> {picked}")

    # --- 4. an amplitude family in lockstep -------------------------------
    print("\n[4] Drive-amplitude family via transient_batch"
          "(matrix='sparse')")
    amplitudes = np.linspace(1.0, 3.0, 8)
    family_ckts = [build_ladder(float(a)) for a in amplitudes]
    t0 = time.perf_counter()
    family = transient_batch(family_ckts, T_STOP, DT, method="adaptive",
                             use_ic=True, min_dt=DT, max_dt=DT,
                             matrix="sparse")
    t_family = time.perf_counter() - t0
    vo = family.voltage("vo")  # (n_cells, n_points)
    print(f"    {len(amplitudes)} cells in {t_family:.3f} s "
          f"({t_family / len(amplitudes):.3f} s/cell vs {t_sparse:.3f} s "
          f"single-circuit sparse)")
    print("    (the lockstep kernel amortizes over MANY cells of a "
          "SMALL circuit — see the 256-cell rectifier bench; for few "
          "large circuits, per-circuit sparse runs win)")
    print(f"    one shared symbolic analysis: "
          f"{family.stats['factorizations']} factorizations, "
          f"{family.stats['pattern_reuses']} pattern reuses")
    for a, v in zip(amplitudes, vo[:, -1]):
        bar = "#" * int(round(v * 30))
        print(f"    amp {a:4.2f} V -> vo {v:6.3f} V  {bar}")

    print("\nDone.")


if __name__ == "__main__":
    main()
