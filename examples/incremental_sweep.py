#!/usr/bin/env python3
"""Incremental study recomputation + session metrics, end to end.

A long-running power study rarely changes wholesale: one axis value
moves, a controller threshold is retuned, a distance is added.  Since
every scenario cell has a content address (the same canonical key the
`ResultStore` files results under and the service dedups by), a new
study definition can be *diffed* against the previous one and only
the changed cells simulated.  This example:

1. runs a distance x load control grid cold through the
   `SweepOrchestrator` with a content-addressed store and a
   `MetricsRecorder` writing a JSONL session file,
2. reruns the identical grid warm — every cell replays (hit rate 1.0),
3. moves one distance value and reruns via `run_delta` — exactly the
   affected cells are computed, the rest replay from the store,
4. clears the store and repeats the delta — the replay misses are
   reported honestly instead of being silently recomputed-as-cached,
5. reads the JSONL session back (`repro.obs.read_jsonl`) and prints
   the summarized sweep/chunk/delta metrics.

The CLI spelling of the same flow is `repro sweep --format json`
(records the study keys) followed by `--diff-against PREV.json`.

Run:  python examples/incremental_sweep.py
"""

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import RemotePoweringSystem
from repro.core import AdaptivePowerController
from repro.engine import (
    ResultStore,
    ScenarioBatch,
    StudyDiff,
    SweepOrchestrator,
    control_cell_keys,
)
from repro.obs import MetricsRecorder, read_jsonl, summarize_events

T_STOP = 20e-3


def grid(distances_mm):
    return ScenarioBatch.from_axes(
        distance=[d * 1e-3 for d in distances_mm],
        i_load=[352e-6, 800e-6, 1.302e-3],
    )


def main():
    system = RemotePoweringSystem(distance=10e-3)
    controller = AdaptivePowerController()

    with tempfile.TemporaryDirectory() as tmp:
        jsonl = Path(tmp) / "session.jsonl"
        store = ResultStore(Path(tmp) / "cache")
        recorder = MetricsRecorder(jsonl_path=jsonl, label="incremental")
        orch = SweepOrchestrator(store=store, recorder=recorder)

        print("=" * 64)
        print("1. cold run — 3 distances x 3 loads")
        print("=" * 64)
        prev_batch = grid([8.0, 10.0, 12.0])
        orch.run_control(prev_batch, system, controller, T_STOP)
        print(f"   {orch.stats.summary()}")
        prev_keys = control_cell_keys(prev_batch, system, controller, T_STOP)

        print()
        print("2. warm rerun of the identical grid")
        orch.run_control(grid([8.0, 10.0, 12.0]), system, controller, T_STOP)
        print(f"   {orch.stats.summary()}")

        print()
        print("3. move one axis value: distance 12 mm -> 14 mm")
        next_batch = grid([8.0, 10.0, 14.0])
        next_keys = control_cell_keys(next_batch, system, controller, T_STOP)
        diff = StudyDiff.between(prev_keys, next_keys)
        print(
            f"   StudyDiff: {diff.n_changed} changed / "
            f"{diff.n_unchanged} unchanged / {diff.n_removed} removed"
        )
        _, report = orch.run_delta(
            "control",
            next_batch,
            prev_keys,
            system=system,
            controller=controller,
            t_stop=T_STOP,
        )
        print(f"   {report.summary()}")
        print(f"   orchestrator: {orch.stats.summary()}")

        print()
        print("4. same delta against a cleared store — honest replay misses")
        store.clear()
        _, report = orch.run_delta(
            "control",
            next_batch,
            next_keys,
            system=system,
            controller=controller,
            t_stop=T_STOP,
        )
        print(f"   {report.summary()}")

        recorder.close()

        print()
        print("5. the JSONL session, summarized")
        print("=" * 64)
        events = read_jsonl(jsonl)
        summary = summarize_events(events)
        sweeps = summary["sweeps"]
        deltas = summary["deltas"]
        print(f"   events   : {summary['events']} (schema-valid)")
        print(
            f"   sweeps   : {sweeps['runs']} runs, {sweeps['cells']} cells, "
            f"{sweeps['cached']} cached / {sweeps['computed']} computed"
        )
        print(
            f"   deltas   : {deltas['runs']} runs, "
            f"{deltas['changed']} recomputed, {deltas['replayed']} replayed, "
            f"{deltas['replay_miss']} replay misses"
        )
        print("   gate this file in CI:")
        print(f"     python benchmarks/metrics_report.py {jsonl.name} \\")
        print("         --require-events sweep,chunk,store,study_diff")


if __name__ == "__main__":
    main()
