#!/usr/bin/env python3
"""The simulation service under load: micro-batching, dedup, backpressure.

`repro.service` turns the vectorized sweep engine into a multi-tenant
service: concurrent requests arriving within one batching window are
coalesced into ONE `ScenarioBatch` dispatched through the
`SweepOrchestrator`, with identical cells deduplicated across clients
by their `ResultStore` content address.  This example:

1. starts the JSON-over-HTTP front-end on a free port (the same server
   `python -m repro.cli serve` runs) and submits a sweep over HTTP,
2. checks the over-the-wire result is bitwise-identical to a direct
   orchestrator run of the same cells,
3. fires 64 concurrent single-cell clients and reports the end-to-end
   speedup over one-engine-call-per-request serving,
4. drives a closed-loop load-generator mix with overlapping interest
   (dedup + cache at work), and
5. shows bounded backpressure: a full queue rejects with a typed error.

Run:  python examples/serve_load_test.py
"""

import asyncio
import time

import numpy as np

from repro import RemotePoweringSystem
from repro.core import AdaptivePowerController
from repro.engine import ScenarioBatch, SweepOrchestrator
from repro.service import (
    HttpServiceClient,
    LoadGenerator,
    QueueFullError,
    ServiceClient,
    ServiceHTTPServer,
    SimRequest,
    SimulationService,
)


async def main():
    print("=" * 64)
    print("Simulation service - micro-batched serving (repro.service)")
    print("=" * 64)

    system = RemotePoweringSystem(distance=10e-3)
    controller = AdaptivePowerController()

    # --- 1. HTTP front-end ------------------------------------------------
    service = SimulationService(system=system, controller=controller,
                                window=10e-3)
    server = ServiceHTTPServer(service, port=0)
    host, port = await server.start()
    await service.start()
    print(f"\n[1] serving on http://{host}:{port}  "
          f"(same endpoints as `repro serve`; try\n"
          f"    curl -s -X POST http://{host}:{port}/submit "
          f"-d '{{\"kind\": \"sweep\", ...}}')")

    payload = {"kind": "sweep", "t_stop": 20e-3,
               "axes": {"distance": [8e-3, 12e-3],
                        "i_load": [352e-6, 1.3e-3]}}
    http = HttpServiceClient(host, port)
    job_id = await http.submit(payload)
    result = await http.result(job_id)
    worst = min(c["in_window"] for c in result["cells"])
    print(f"    sweep {job_id}: {len(result['cells'])} cells, "
          f"worst in-window fraction {worst:.2f}")

    # --- 2. wire-format parity -------------------------------------------
    req = SimRequest.from_payload(payload)
    ref = SweepOrchestrator().run_control(
        ScenarioBatch(req.scenarios), system, controller, req.t_stop)
    exact = all(
        np.array_equal(np.array(result["cells"][i]["v_rect"]),
                       ref.v_rect[i])
        for i in range(len(ref.scenarios)))
    print(f"\n[2] HTTP response vs direct SweepOrchestrator run: "
          f"{'bitwise identical' if exact else 'MISMATCH'}")
    assert exact

    # --- 3. 64 concurrent clients ----------------------------------------
    client = ServiceClient(service)
    distances = np.linspace(6e-3, 20e-3, 8)
    loads = np.linspace(200e-6, 1.3e-3, 8)
    singles = [{"kind": "sweep", "t_stop": 20e-3,
                "axes": {"distance": [float(d)],
                         "i_load": [float(i)]}}
               for d in distances for i in loads]
    t0 = time.perf_counter()
    ids = await asyncio.gather(*(client.submit(p) for p in singles))
    await asyncio.gather(*(client.result(i) for i in ids))
    t_svc = time.perf_counter() - t0
    t0 = time.perf_counter()
    for p in singles[:8]:                   # a slice is enough to time
        one = SimRequest.from_payload(p)
        SweepOrchestrator().run_control(
            ScenarioBatch(one.scenarios), system, controller, 20e-3)
    t_seq = (time.perf_counter() - t0) * len(singles) / 8
    batching = service.scheduler.stats
    print(f"\n[3] 64 concurrent single-cell requests")
    print(f"    sequential, 1 engine call each (extrapolated): "
          f"{t_seq:7.3f} s")
    print(f"    micro-batched service                        : "
          f"{t_svc:7.3f} s   ({t_seq / t_svc:.1f}x)")
    print(f"    engine batches: {batching.batches}, mean batch "
          f"{batching.as_dict()['mean_batch_cells']:.0f} cells")

    # --- 4. closed-loop mixed load ---------------------------------------
    mix = [{"kind": "sweep", "t_stop": 20e-3,
            "axes": {"distance": [float(distances[k % 8])],
                     "i_load": [352e-6]}}
           for k in range(32)]
    mix += [{"kind": "battery", "p_in": 5e-3,
             "axes": {"i_load": [352e-6, 1.3e-3]}}] * 4
    generator = LoadGenerator(client, mix, concurrency=8)
    summary = await generator.run()
    sdict = service.scheduler.stats.as_dict()
    print(f"\n[4] closed-loop mix: {summary['completed']}/"
          f"{summary['requests']} ok, "
          f"{summary['throughput_rps']:.0f} req/s, "
          f"p50 {summary['latency']['p50_s'] * 1e3:.1f} ms, "
          f"p90 {summary['latency']['p90_s'] * 1e3:.1f} ms")
    print(f"    dedup rate {sdict['dedup_rate']:.0%} "
          f"(identical cells across clients computed once)")

    # --- 5. bounded backpressure ------------------------------------------
    tiny = SimulationService(system=system, controller=controller,
                             max_pending=2)   # dispatcher not started
    tiny_client = ServiceClient(tiny)
    for d in (8e-3, 10e-3):
        await tiny_client.submit({"kind": "sweep", "t_stop": 10e-3,
                                  "axes": {"distance": [d],
                                           "i_load": [352e-6]}})
    try:
        await tiny_client.submit({"kind": "sweep", "t_stop": 10e-3,
                                  "axes": {"distance": [12e-3],
                                           "i_load": [352e-6]}})
        print("\n[5] backpressure FAILED to engage")
    except QueueFullError as exc:
        print(f"\n[5] bounded queue (max_pending=2) rejected request "
              f"3 with a typed error:\n    QueueFullError: {exc}")

    stats = service.stats()
    print(f"\nservice stats: {stats['submitted']} jobs, "
          f"p50 latency {stats['latency']['p50_s'] * 1e3:.1f} ms, "
          f"queue depth {stats['queue_depth']}")
    await service.stop()
    await server.stop()
    print("\nDone.")


if __name__ == "__main__":
    asyncio.run(main())
