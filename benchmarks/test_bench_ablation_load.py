"""Ablation — receiver load optimisation (the ref [11] design space).

The paper's group separately studied load optimisation for inductive
links; this bench sweeps the load presented to the receiving coil and
verifies the two optima our two-port model predicts:

* maximum *power* at the conjugate match R_load = R_rx,
* maximum *efficiency* at R_load = R_rx*sqrt(1 + k^2*Q1*Q2) (> R_rx).
"""

import numpy as np
import pytest

from conftest import report
from repro.core import PAPER
from repro.link import CircularSpiral, InductiveLink, RectangularSpiral


def test_bench_load_sweep(once):
    def sweep():
        tx = CircularSpiral.ironic_transmitter()
        rx = RectangularSpiral.ironic_receiver()
        link = InductiveLink(tx, rx, PAPER.carrier_freq)
        i_tx = link.calibrate_drive(PAPER.power_at_6mm,
                                    PAPER.rx_test_distance)
        r_opt_eta = link.optimal_efficiency_load(10e-3)
        loads = np.geomspace(link.r_rx / 10, link.r_rx * 50, 25)
        rows = []
        for r_load in loads:
            pt = link.operating_point(i_tx, 10e-3, r_load)
            rows.append((r_load, pt.delivered_power, pt.efficiency))
        return link, r_opt_eta, rows

    link, r_opt_eta, rows = once(sweep)

    report("Load sweep at 10 mm (sample rows)",
           [(r, p * 1e3, eta * 100) for r, p, eta in rows[::6]],
           header=["R_load (ohm)", "P (mW)", "eta (%)"])
    report("Predicted optima", [
        ("power-optimal load (ohm)", link.optimal_series_load(),
         "= R_rx"),
        ("efficiency-optimal load (ohm)", r_opt_eta,
         "= R_rx*sqrt(1+kq)"),
    ])

    loads = np.array([r[0] for r in rows])
    powers = np.array([r[1] for r in rows])
    etas = np.array([r[2] for r in rows])
    # Power peaks nearest the conjugate match.
    r_power_peak = loads[np.argmax(powers)]
    assert r_power_peak == pytest.approx(link.r_rx, rel=0.6)
    # Efficiency peaks at a strictly larger load than power does.
    r_eta_peak = loads[np.argmax(etas)]
    assert r_eta_peak > r_power_peak
    assert r_eta_peak == pytest.approx(r_opt_eta, rel=0.6)


def test_bench_regulator_dropout_ablation(once):
    """Ablation: the 2.1 V rule against the dropout budget — a lower-
    dropout regulator relaxes the minimum rectifier voltage and buys
    operating distance.  All four dropout variants bisect in lock-step
    through one vectorized ScenarioBatch."""
    from repro.engine import Scenario, ScenarioBatch, SweepOrchestrator
    from repro.power import LowDropoutRegulator

    def sweep():
        dropouts = (0.1, 0.2, 0.3, 0.4)
        v_min = np.array([LowDropoutRegulator(dropout=d).v_in_min
                          for d in dropouts])
        batch = ScenarioBatch([Scenario(distance=10e-3, i_load=352e-6)
                               for _ in dropouts])
        orchestrator = SweepOrchestrator()
        # Smallest constant input power that settles above each v_min
        # with the low-power load: one bisection per dropout, all four
        # integrated as a single batch per iteration.
        p_lo = np.full(len(dropouts), 0.1e-3)
        p_hi = np.full(len(dropouts), 10e-3)
        for _ in range(30):
            p_mid = 0.5 * (p_lo + p_hi)
            v_final = orchestrator.run_envelope(batch, p_mid,
                                                1.2e-3).v_final
            settled = v_final >= v_min
            p_hi = np.where(settled, p_mid, p_hi)
            p_lo = np.where(settled, p_lo, p_mid)
        return [(d, float(v), float(p))
                for d, v, p in zip(dropouts, v_min, p_hi)]

    rows = once(sweep)
    report("Regulator dropout vs required carrier power",
           [(d, v, p * 1e3) for d, v, p in rows],
           header=["dropout (V)", "V_rect min (V)", "P required (mW)"])
    powers = [r[2] for r in rows]
    assert all(a <= b for a, b in zip(powers, powers[1:]))
