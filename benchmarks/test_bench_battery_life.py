"""E4 / Section III-B — patch battery life in the three scenarios.

Paper: "the estimated battery duration is about 10 h ... about 3.5 h
[bluetooth-connected] ... the patch can send power continuously for
1.5 h."
"""

import pytest

from conftest import report
from repro import PAPER
from repro.patch import IronicPatch


def run_battery_model():
    patch = IronicPatch()
    table = patch.battery_life_table()
    currents = {name: patch.scenario_current(name) for name in table}
    return patch, table, currents


def test_bench_battery_life(once):
    patch, table, currents = once(run_battery_model)

    paper = {
        "idle": PAPER.battery_life_idle_h,
        "connected": PAPER.battery_life_connected_h,
        "powering": PAPER.battery_life_powering_h,
    }
    report("Patch battery life",
           [(name, currents[name] * 1e3, table[name], paper[name])
            for name in ("idle", "connected", "powering")],
           header=["scenario", "I (mA)", "model (h)", "paper (h)"])

    for name in paper:
        assert table[name] == pytest.approx(paper[name], rel=0.12)
    # Ordering and rough ratios (the shape the paper implies).
    assert table["idle"] > 2 * table["connected"]
    assert table["connected"] > 2 * table["powering"]


def test_bench_duty_cycling(once):
    """Extension: life under mixed duty cycles."""
    patch = IronicPatch()

    def sweep():
        duties = ((0.05, 0.02), (0.10, 0.05), (0.25, 0.10), (0.50, 0.25))
        return [(p, c, patch.monitoring_session_life(p, c))
                for p, c in duties]

    rows = once(sweep)
    report("Duty-cycled monitoring life",
           [(f"{p * 100:.0f}% pwr", f"{c * 100:.0f}% bt", h)
            for p, c, h in rows],
           header=["powering", "connected", "life (h)"])
    lives = [h for _, _, h in rows]
    assert all(a > b for a, b in zip(lives, lives[1:]))
    assert lives[0] > patch.battery_life_hours("powering")


def test_bench_duty_cycle_vs_implant_rail(once):
    """Extension, through the engine's ScenarioBatch: duty-cycling the
    carrier stretches patch battery life, but only duty cycles the
    closed-loop implant rail can ride out are usable — sweep both sides
    of that trade in one batch."""
    from repro import RemotePoweringSystem
    from repro.core import AdaptivePowerController
    from repro.engine import Scenario, ScenarioBatch, SweepOrchestrator

    duties = (1.0, 0.75, 0.5, 0.3, 0.15, 0.05)

    def sweep():
        system = RemotePoweringSystem(distance=10e-3)
        controller = AdaptivePowerController()
        patch = IronicPatch()
        batch = ScenarioBatch(
            [Scenario(distance=10e-3, duty_cycle=dc) for dc in duties]
            # A far-implant, aggressive-duty-cycling corner rides along.
            + [Scenario(distance=18e-3, duty_cycle=0.05)])
        result = SweepOrchestrator().run_control(batch, system,
                                                 controller,
                                                 t_stop=40e-3)
        frac, v_min, _, drive = result.regulation_statistics()
        lives = [patch.monitoring_session_life(dc, 1.0 - dc)
                 for dc in duties]
        return frac, v_min, drive, lives

    frac, v_min, drive, lives = once(sweep)
    report("Carrier duty cycle at 10 mm: battery life vs rail",
           [(f"{dc * 100:.0f}%", h, f, v, d)
            for dc, h, f, v, d
            in zip(duties, lives, frac, v_min, drive)],
           header=["duty", "patch life (h)", "in-window", "min Vo (V)",
                   "mean drive"])
    # Battery life grows monotonically as the carrier duty falls...
    assert all(a < b for a, b in zip(lives, lives[1:]))
    # ...the loop compensates by raising drive monotonically...
    assert all(a <= b + 1e-12 for a, b in zip(drive, drive[1:]))
    assert all(f > 0.9 for f in frac[:len(duties)])
    # ...but at 18 mm a 5% carrier exceeds the drive authority and the
    # rail collapses: duty cycling is only free inside the loop's range.
    assert frac[-1] < 0.1
    assert v_min[-1] < 2.1
