"""E4 / Section III-B — patch battery life in the three scenarios.

Paper: "the estimated battery duration is about 10 h ... about 3.5 h
[bluetooth-connected] ... the patch can send power continuously for
1.5 h."
"""

import pytest

from conftest import report
from repro import PAPER
from repro.patch import IronicPatch


def run_battery_model():
    patch = IronicPatch()
    table = patch.battery_life_table()
    currents = {name: patch.scenario_current(name) for name in table}
    return patch, table, currents


def test_bench_battery_life(once):
    patch, table, currents = once(run_battery_model)

    paper = {
        "idle": PAPER.battery_life_idle_h,
        "connected": PAPER.battery_life_connected_h,
        "powering": PAPER.battery_life_powering_h,
    }
    report("Patch battery life",
           [(name, currents[name] * 1e3, table[name], paper[name])
            for name in ("idle", "connected", "powering")],
           header=["scenario", "I (mA)", "model (h)", "paper (h)"])

    for name in paper:
        assert table[name] == pytest.approx(paper[name], rel=0.12)
    # Ordering and rough ratios (the shape the paper implies).
    assert table["idle"] > 2 * table["connected"]
    assert table["connected"] > 2 * table["powering"]


def test_bench_duty_cycling(once):
    """Extension: life under mixed duty cycles."""
    patch = IronicPatch()

    def sweep():
        duties = ((0.05, 0.02), (0.10, 0.05), (0.25, 0.10), (0.50, 0.25))
        return [(p, c, patch.monitoring_session_life(p, c))
                for p, c in duties]

    rows = once(sweep)
    report("Duty-cycled monitoring life",
           [(f"{p * 100:.0f}% pwr", f"{c * 100:.0f}% bt", h)
            for p, c, h in rows],
           header=["powering", "connected", "life (h)"])
    lives = [h for _, _, h in rows]
    assert all(a > b for a, b in zip(lives, lives[1:]))
    assert lives[0] > patch.battery_life_hours("powering")
