"""Shared helpers for the paper-reproduction benchmarks.

Every bench regenerates one figure or reported-numbers group from the
paper and prints a paper-vs-measured table (run with ``-s`` to see them);
the assertions encode the *shape* expectations (who wins, by what factor)
rather than exact absolute agreement.
"""

import pytest


def report(title, rows, header=None):
    """Print a small aligned table under a title banner."""
    print()
    print(f"== {title} ==")
    if header:
        print("  " + " | ".join(f"{h:>16s}" for h in header))
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, float):
                cells.append(f"{cell:>16.4g}")
            else:
                cells.append(f"{str(cell):>16s}")
        print("  " + " | ".join(cells))


@pytest.fixture
def once(benchmark):
    """Run a heavy simulation exactly once under the benchmark timer."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
