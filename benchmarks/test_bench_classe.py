"""E7 / Section III-A — class-E amplifier operation.

Paper: the amplifier runs at 5 MHz with 50% duty; "by properly tuning the
amplifier capacitors C3 and C4, the current and the voltage across the
switch M2 are never non-zero at the same time" — theoretical efficiency
100%.  The bench measures the tuned stage and the detuning ablation.
"""

import pytest

from conftest import report
from repro.amplifier import ClassEDesign, simulate_class_e


def test_bench_classe_tuned(once):
    def run():
        design = ClassEDesign.for_output_power(3.7, 0.1, 5e6,
                                               q_loaded=5.0)
        meas, _ = simulate_class_e(design, cycles=40,
                                   points_per_cycle=100)
        return design, meas

    design, meas = once(run)
    report("Tuned class-E at 5 MHz / 50% duty", [
        ("efficiency", meas.efficiency, "theory: 1.0 (ideal)"),
        ("ZVS quality", meas.zvs_quality, "1.0 = ideal"),
        ("V(drain) at switch-on (V)", meas.v_switch_on, "ideal: 0"),
        ("peak drain voltage (V)", meas.peak_drain_voltage,
         f"theory: {design.peak_switch_voltage:.2f}"),
        ("P_out (mW)", meas.p_out * 1e3, "design: 100"),
        ("I_dc (mA)", meas.i_dc * 1e3,
         f"design: {design.i_dc * 1e3:.1f}"),
    ])
    assert meas.efficiency > 0.85
    assert meas.zvs_quality > 0.95
    assert meas.p_out == pytest.approx(design.p_out, rel=0.2)


def test_bench_classe_detuning_ablation(once):
    """Ablation: C3 mis-tuning vs ZVS and efficiency — why the paper
    says 'by properly tuning the amplifier capacitors'."""

    def sweep():
        design = ClassEDesign.for_output_power(3.7, 0.1, 5e6,
                                               q_loaded=5.0)
        rows = []
        for error in (-0.4, -0.2, 0.0, 0.2, 0.4):
            detuned = design.detuned(shunt_error=error)
            meas, _ = simulate_class_e(detuned, cycles=30,
                                       points_per_cycle=60)
            rows.append((error, meas.efficiency, meas.zvs_quality,
                         meas.v_switch_on))
        return rows

    rows = once(sweep)
    report("C3 detuning ablation",
           rows, header=["C3 error", "efficiency", "ZVS", "V_on (V)"])
    by_err = {r[0]: r for r in rows}
    # The tuned point has the best ZVS.
    assert by_err[0.0][2] >= max(by_err[-0.4][2], by_err[0.4][2])
    # Large detuning visibly degrades switch-on voltage.
    assert by_err[0.4][3] > by_err[0.0][3]
