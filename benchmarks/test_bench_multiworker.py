"""Multi-worker serving-tier saturation bench.

The acceptance criteria for the scaling tier:

* with >= 2 CPUs, two scheduler workers dispatching to the shared
  process pool push >= 1.5x the closed-loop throughput of one worker
  on the same distinct-cell workload (on a 1-CPU host the parity
  checks still run, the speedup assertion is skipped — IPC overhead
  with nothing to parallelize against is not a regression);
* streamed chunks reassemble to arrays bitwise-identical to a cold
  direct ``SweepOrchestrator`` run of the same cells;
* the ``dir://`` and ``sqlite://`` backends end the runs holding
  identical content-addressed rows, and both runs returned identical
  wire documents.
"""

import asyncio
import os
import time

import numpy as np

from conftest import report
from repro import RemotePoweringSystem
from repro.core import AdaptivePowerController
from repro.engine import ScenarioBatch, SweepOrchestrator
from repro.engine.parallel import control_cell_keys
from repro.service import ServiceClient, SimRequest, SimulationService
from repro.storage import open_backend

T_STOP = 50e-3
N_REQUESTS = 32


def distinct_payloads():
    """32 distinct single-cell sweeps — no dedup, pure compute load."""
    distances = np.linspace(6e-3, 20e-3, 8)
    loads = np.linspace(250e-6, 1.1e-3, 4)
    return [
        {"kind": "sweep", "t_stop": T_STOP,
         "axes": {"distance": [float(d)], "i_load": [float(i)]}}
        for d in distances for i in loads
    ]


async def drive(system, controller, payloads, workers, store_uri):
    """Serve the payloads through ``workers`` scheduler workers; the
    pool warm-up happens in start(), outside the timed span."""
    service = SimulationService(
        system=system, controller=controller, store=store_uri,
        scheduler_workers=workers, window=5e-3, max_batch=8,
        max_pending=N_REQUESTS * 2)
    client = ServiceClient(service)
    await service.start()
    try:
        t0 = time.perf_counter()
        ids = await asyncio.gather(*(client.submit(p) for p in payloads))
        results = await asyncio.gather(*(client.result(i) for i in ids))
        elapsed = time.perf_counter() - t0
        # Late-subscriber stream of the first job (full replay).
        chunks = [c async for c in client.iter_results(ids[0])]
        stats = service.stats()
    finally:
        await service.stop()
    return elapsed, results, chunks, stats


def test_bench_multiworker_saturation(once, tmp_path):
    """1 vs 2 scheduler workers on 32 distinct cells: throughput,
    streamed-vs-cold bitwise parity, dir/sqlite row identity."""
    system = RemotePoweringSystem(distance=10e-3)
    controller = AdaptivePowerController()
    payloads = distinct_payloads()
    dir_uri = f"dir://{tmp_path}/cells-dir"
    sqlite_uri = f"sqlite://{tmp_path}/cells-sqlite"

    def timed():
        t_one, res_one, _, _ = asyncio.run(
            drive(system, controller, payloads, 1, dir_uri))
        t_two, res_two, chunks, stats = asyncio.run(
            drive(system, controller, payloads, 2, sqlite_uri))
        return t_one, res_one, t_two, res_two, chunks, stats

    t_one, res_one, t_two, res_two, chunks, stats = once(timed)
    cpus = os.cpu_count() or 1
    speedup = t_one / t_two if t_two > 0 else float("inf")

    report("Multi-worker serving tier (32 distinct cells)", [
        ("host CPUs", float(cpus), "speedup gated on >= 2"),
        ("1 scheduler worker (s)", t_one, "in-process dispatch"),
        ("2 scheduler workers (s)", t_two, "shared process pool"),
        ("throughput speedup", speedup,
         "acceptance: >= 1.5x on >= 2 CPUs"),
        ("requests served", float(N_REQUESTS * 2), "both runs"),
        ("cells computed (2w run)",
         float(stats["batching"]["cells_computed"]),
         "all distinct: no dedup credit"),
    ])

    # Both runs completed every request and computed every cell.
    assert len(res_one) == len(res_two) == N_REQUESTS
    assert stats["batching"]["cells_computed"] == N_REQUESTS
    assert stats["scheduler_workers"] == 2

    # Identical wire documents from both tiers/backends.
    for doc_one, doc_two in zip(res_one, res_two):
        assert doc_one == doc_two

    # Streamed chunks reassemble bitwise to a cold orchestrator run.
    req = SimRequest.from_payload(payloads[0])
    ref = SweepOrchestrator().run_control(
        ScenarioBatch(req.scenarios), system, controller, T_STOP)
    streamed = {}
    for chunk in chunks:
        for idx, cell in zip(chunk["cell_indices"], chunk["cells"]):
            streamed[idx] = cell
    assert set(streamed) == {0}
    assert np.array_equal(np.array(streamed[0]["v_rect"]), ref.v_rect[0])
    assert np.array_equal(
        np.array(streamed[0]["p_delivered"]), ref.p_delivered[0])

    # The two backends filed identical rows under identical keys.
    with open_backend(dir_uri) as store_dir, \
            open_backend(sqlite_uri) as store_sqlite:
        for payload in payloads[:4]:
            r = SimRequest.from_payload(payload)
            keys = control_cell_keys(
                ScenarioBatch(r.scenarios), system, controller, T_STOP)
            for key in keys:
                row_dir = store_dir.get(key)
                row_sqlite = store_sqlite.get(key)
                assert row_dir is not None and row_sqlite is not None
                for name in row_dir:
                    assert np.array_equal(row_dir[name],
                                          row_sqlite[name])

    if cpus >= 2:
        assert speedup >= 1.5, (
            f"2 scheduler workers only {speedup:.2f}x faster than 1 "
            f"on a {cpus}-CPU host")
