"""Ungated bench: the static analyzer's pre-flight overhead.

The analyzer runs by default (``check="error"``) in front of every
solve, so its cost must be negligible against the work it fronts.
This bench times ``analyze_circuit`` on the same 256-section
distributed-rectifier ladder the sparse bench uses (259 MNA unknowns,
including the structural-rank bipartite matching on the full CSR
pattern) and asserts it stays under 5% of one pinned-grid adaptive
solve.  Not in ``BENCH_baseline.json``: the bound is asserted inline.
"""

import time

import numpy as np

from conftest import report
from repro.spice import Circuit, analyze_circuit, sine, transient

SECTIONS = 256
R_SECTION = 5.0
C_SECTION = 20e-12
C_OUT = 100e-9
R_LOAD = 10e3
FREQ = 5e6
DT = 2e-9
T_STOP = 0.4e-6

#: Pre-flight budget, as a fraction of one adaptive solve.
MAX_OVERHEAD = 0.05


def build_ladder():
    ckt = Circuit(f"ladder{SECTIONS}")
    ckt.add_vsource("V1", "n0", "0", sine(2.0, FREQ))
    for k in range(SECTIONS):
        ckt.add_resistor(f"R{k}", f"n{k}", f"n{k + 1}", R_SECTION)
        ckt.add_capacitor(f"C{k}", f"n{k + 1}", "0", C_SECTION, ic=0.0)
        ckt.add_diode(f"D{k}", f"n{k + 1}", "vo")
    ckt.add_capacitor("Co", "vo", "0", C_OUT, ic=0.0)
    ckt.add_resistor("RL", "vo", "0", R_LOAD)
    return ckt


def test_bench_spice_analyze_overhead(once):
    # Time the solve once (the expensive side), with the pre-flight
    # disabled so the two measurements do not overlap.
    circuit = build_ladder()
    t0 = time.perf_counter()
    res = once(transient, circuit, T_STOP, DT, method="adaptive",
               use_ic=True, check="off")
    t_solve = time.perf_counter() - t0
    assert np.isfinite(res.voltage("vo").v[-1])

    # Time the analyzer on pre-built circuits: in the pre-flight the
    # solver has already paid `circuit.build()`, so the analyzer's
    # marginal cost excludes it.  Repeat and take the best — the
    # pre-flight runs once per topology, so steady-state is what
    # matters.
    reps = 5
    fresh = []
    for _ in range(reps):
        ckt = build_ladder()
        ckt.build()
        fresh.append(ckt)
    t_analyze = min(_timed(analyze_circuit, c) for c in fresh)

    n = circuit.n_unknowns
    report(
        f"static analyzer overhead — {SECTIONS}-section ladder "
        f"({n} unknowns)",
        [
            ("adaptive solve", t_solve),
            ("analyze_circuit", t_analyze),
            ("overhead", t_analyze / t_solve),
            ("budget", MAX_OVERHEAD),
        ],
        header=("stage", "seconds"),
    )
    assert t_analyze < MAX_OVERHEAD * t_solve, (
        f"analyzer took {t_analyze:.4f}s vs {t_solve:.4f}s solve "
        f"({t_analyze / t_solve:.1%} > {MAX_OVERHEAD:.0%} budget)"
    )


def _timed(func, *args):
    t0 = time.perf_counter()
    result = func(*args)
    assert result == []  # the ladder lints clean
    return time.perf_counter() - t0
