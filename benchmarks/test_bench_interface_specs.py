"""E6 / Section II-B — electronic-interface specifications.

Paper: 650 mV between WE and RE from the 1.2 V and 550 mV bandgaps;
4 uA full scale at 250 pA resolution -> 14-bit ADC; 45 uA potentiostat +
readout and 240 uA ADC at 1.8 V.  Includes the OSR ablation for the
sigma-delta converter.
"""

import numpy as np
import pytest

from conftest import report
from repro import PAPER
from repro.adc import SensorADC, enob_from_snr, sqnr_theoretical
from repro.sensor import CLODX, ElectronicInterface


def test_bench_interface_specs(once):
    def build():
        ei = ElectronicInterface.for_enzyme(CLODX)
        adc = ei.adc
        resolution = adc.effective_resolution(
            test_currents=np.linspace(0.2e-6, 3.8e-6, 7))
        return ei, resolution

    ei, resolution = once(build)

    report("Section II-B interface specs", [
        ("V_WE - V_RE (mV)", ei.applied_potential() * 1e3, "paper: 650"),
        ("ADC bits required", SensorADC.required_bits(), "paper: 14"),
        ("effective resolution (pA)", resolution * 1e12,
         "paper spec: 250"),
        ("potentiostat+readout (uA)",
         ei.supply_current(measuring=False) * 1e6, "paper: 45"),
        ("with ADC (uA)", ei.supply_current(measuring=True) * 1e6,
         "paper: 285"),
        ("ADC power (uW)", ei.adc.power_consumption() * 1e6,
         "paper: 432"),
    ])

    assert ei.applied_potential() == pytest.approx(PAPER.v_oxidation,
                                                   abs=2e-3)
    assert SensorADC.required_bits() == PAPER.adc_bits
    assert resolution <= PAPER.adc_resolution_current
    assert ei.supply_current(False) == pytest.approx(
        PAPER.i_potentiostat, rel=0.01)
    assert ei.supply_current(True) == pytest.approx(
        PAPER.i_potentiostat + PAPER.i_adc, rel=0.01)


def test_bench_adc_osr_ablation(once):
    """Ablation: why the paper's architecture needs a healthy OSR —
    theoretical SQNR and measured DC resolution vs oversampling."""

    def sweep():
        rows = []
        for osr in (32, 64, 128, 256):
            adc = SensorADC(osr=osr)
            res = adc.effective_resolution(
                test_currents=[0.5e-6, 2e-6, 3.5e-6])
            sqnr = sqnr_theoretical(2, osr)
            rows.append((osr, sqnr, enob_from_snr(sqnr), res * 1e12))
        return rows

    rows = once(sweep)
    report("Sigma-delta OSR ablation",
           rows, header=["OSR", "SQNR (dB)", "ideal ENOB", "meas res (pA)"])
    # Resolution improves (or at least never worsens) with OSR, and only
    # the high-OSR points meet the paper's 250 pA specification.
    res = [r[3] for r in rows]
    assert res[-1] <= 250.0
    assert res[-1] <= res[0]
    # 14-bit ideal ENOB needs OSR >= ~128 for a 2nd-order loop.
    enobs = {r[0]: r[2] for r in rows}
    assert enobs[32] < 14.0 < enobs[256]
