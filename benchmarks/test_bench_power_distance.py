"""E3 / Section III-B — received power vs distance, air vs tissue.

The paper's measured anchors: 15 mW at 6 mm (the calibration point),
~1.17 mW through a 17 mm beef-sirloin slice, "similar to that obtained
in air" at the same distance — plus the misalignment sensitivity sweep
as an extension.
"""

import numpy as np
import pytest

from conftest import report
from repro import PAPER, RemotePoweringSystem
from repro.link import TissueLayer


def run_sweeps():
    air = RemotePoweringSystem(distance=10e-3)
    meat = RemotePoweringSystem(
        distance=17e-3, tissue_layers=[TissueLayer("sirloin", 17e-3)])
    distances = np.arange(2e-3, 22e-3, 2e-3)
    sweep = air.power_sweep(distances)
    return air, meat, sweep


def test_bench_power_vs_distance(once):
    air, meat, sweep = once(run_sweeps)

    report("Received power vs distance (air)",
           [(d * 1e3, p * 1e3) for d, p in sweep],
           header=["d (mm)", "P (mW)"])

    p6 = air.available_power(6e-3)
    p17_air = air.available_power(17e-3)
    p17_meat = meat.available_power()
    report("Section III-B anchors", [
        ("P @ 6 mm (mW)", p6 * 1e3, "paper: 15"),
        ("P @ 17 mm air (mW)", p17_air * 1e3, "paper: ~1.17"),
        ("P @ 17 mm sirloin (mW)", p17_meat * 1e3, "paper: 1.17"),
        ("tissue/air ratio", p17_meat / p17_air, "paper: ~1"),
    ])

    # Calibration anchor is exact by construction.
    assert p6 == pytest.approx(PAPER.power_at_6mm, rel=1e-6)
    # 17 mm anchors within 25-35%.
    assert p17_air == pytest.approx(PAPER.power_through_17mm_sirloin,
                                    rel=0.25)
    assert p17_meat == pytest.approx(PAPER.power_through_17mm_sirloin,
                                     rel=0.35)
    # The paper's qualitative claim: tissue ~ air at 5 MHz.
    assert 0.75 < p17_meat / p17_air <= 1.0
    # Monotone falloff, and the 6->17 mm factor is about an order of
    # magnitude (the paper's 15 -> 1.17 is a factor ~13).
    powers = [p for _, p in sweep]
    assert all(a > b for a, b in zip(powers, powers[1:]))
    assert 8 < p6 / p17_air < 20


def test_bench_batched_rail_map(once):
    """Extension, through the engine's sweep orchestrator: the distance
    sweep re-expressed as rail outcomes — at which separations does the
    unregulated 5-to-15 mW envelope still settle above the 2.1 V rule?"""
    from repro.engine import ScenarioBatch, SweepOrchestrator

    def sweep():
        air = RemotePoweringSystem(distance=10e-3)
        distances = np.arange(6e-3, 20e-3, 2e-3)
        powers = np.array([air.available_power(d) for d in distances])
        batch = ScenarioBatch.from_grid(distances, [352e-6])
        orchestrator = SweepOrchestrator()
        env = orchestrator.run_envelope(batch, powers, t_stop=1.2e-3)
        charge = orchestrator.charge_times(batch, powers,
                                           PAPER.fig11_charge_voltage)
        return distances, powers, env.v_final, charge

    distances, powers, v_final, charge = once(sweep)
    report("Rail outcome vs distance (352 uA load, batched)",
           [(d * 1e3, p * 1e3, v, t * 1e6 if np.isfinite(t) else "never")
            for d, p, v, t in zip(distances, powers, v_final, charge)],
           header=["d (mm)", "P (mW)", "Vo equil (V)", "t_2.75V (us)"])
    # Equilibrium falls monotonically with distance, and the clamp pins
    # the near positions at its ceiling.
    assert all(a >= b - 1e-9 for a, b in zip(v_final, v_final[1:]))
    assert v_final[0] > 2.9
    # The paper's operating point (10 mm) both charges in time and
    # regulates; far positions eventually fail the 2.1 V rule.
    k10 = int(np.argmin(np.abs(distances - 10e-3)))
    assert np.isfinite(charge[k10]) and charge[k10] < 500e-6
    assert v_final[-1] < PAPER.v_rect_minimum


def test_bench_misalignment(once):
    """Extension: lateral offset sensitivity at the 10 mm depth."""
    system = RemotePoweringSystem(distance=10e-3)

    def sweep():
        offsets = (0.0, 4e-3, 8e-3, 12e-3, 16e-3)
        return [(o, system.link.available_power(system.i_tx, 10e-3,
                                                lateral_offset=o))
                for o in offsets]

    rows = once(sweep)
    report("Misalignment at 10 mm depth",
           [(o * 1e3, p * 1e3) for o, p in rows],
           header=["offset (mm)", "P (mW)"])
    powers = [p for _, p in rows]
    assert all(a >= b for a, b in zip(powers, powers[1:]))
    # Half the coil radius of offset costs less than half the power.
    assert powers[1] > 0.5 * powers[0]
