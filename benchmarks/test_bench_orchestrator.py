"""Orchestration acceptance bench — parallel sweeps and the result store.

The acceptance criteria for the sweep-orchestration layer:

* a 2-worker orchestrated sweep of a >= 128-cell grid beats the serial
  ``ScenarioBatch`` run of the same grid by >= 1.7x (asserted whenever
  the host has >= 2 CPUs; on a single-CPU host the ratio is reported
  but not enforced — two processes on one core cannot speed anything
  up), with **bitwise-identical** result arrays;
* a warm-cache rerun of the same grid through the content-addressed
  result store completes in < 10% of the cold time.

The grid is motion-profile-heavy on purpose: moving scenarios pay one
Python-level link solve per scenario per control step, which is the
per-scenario work that sharding actually parallelises (the vectorized
time loop itself costs the same per chunk regardless of width — see
the ``repro.engine.parallel`` module docstring).
"""

import functools
import os
import time

import numpy as np
import pytest

from conftest import report
from repro import RemotePoweringSystem
from repro.core import AdaptivePowerController
from repro.engine import (
    ResultStore,
    Scenario,
    ScenarioBatch,
    SweepOrchestrator,
)

T_STOP = 100e-3
N_PROFILES = 32
N_LOADS = 8


def drift_profile(t, d0, amplitude):
    """A picklable posture-drift motion profile (module-level so the
    multiprocessing workers can unpickle it)."""
    return d0 + amplitude * (t / T_STOP)


def build_grid():
    """32 motion profiles x 8 loads = 256 moving-scenario cells."""
    loads = np.linspace(200e-6, 1.3e-3, N_LOADS)
    scenarios = []
    for k in range(N_PROFILES):
        profile = functools.partial(
            drift_profile, d0=6e-3 + k * 0.25e-3, amplitude=4e-3)
        for i_load in loads:
            scenarios.append(Scenario(distance=profile, i_load=i_load))
    return ScenarioBatch(scenarios)


def test_bench_parallel_speedup_and_parity(once):
    """2-worker orchestrated sweep vs serial ScenarioBatch: bitwise
    parity always; >= 1.7x speedup enforced on multi-core hosts."""
    system = RemotePoweringSystem(distance=10e-3)
    controller = AdaptivePowerController()
    batch = build_grid()
    assert len(batch) >= 128
    orchestrator = SweepOrchestrator(workers=2)

    def timed():
        t0 = time.perf_counter()
        serial = batch.run_control(system, controller, T_STOP)
        t_serial = time.perf_counter() - t0
        t0 = time.perf_counter()
        parallel = orchestrator.run_control(batch, system, controller,
                                            T_STOP)
        t_parallel = time.perf_counter() - t0
        return serial, t_serial, parallel, t_parallel

    serial, t_serial, parallel, t_parallel = once(timed)
    speedup = t_serial / t_parallel
    cpus = os.cpu_count() or 1

    report("2-worker orchestrated sweep vs serial ScenarioBatch", [
        ("scenarios", float(len(batch)), ">= 128 required"),
        ("control steps each", float(serial.times.size), ""),
        ("serial ScenarioBatch (s)", t_serial, ""),
        ("orchestrated, 2 workers (s)", t_parallel, ""),
        ("speedup", speedup, "acceptance: >= 1.7x"),
        ("host CPUs", float(cpus),
         "enforced on >= 2" if cpus >= 2 else "single CPU: reported only"),
    ])

    # Sharded execution must be bitwise-identical to the serial batch.
    assert orchestrator.stats.parallel or cpus < 2
    assert np.array_equal(serial.v_rect, parallel.v_rect)
    assert np.array_equal(serial.v_reported, parallel.v_reported)
    assert np.array_equal(serial.drive_scale, parallel.drive_scale)
    assert np.array_equal(serial.p_delivered, parallel.p_delivered)
    assert np.array_equal(serial.distance, parallel.distance)
    assert np.array_equal(serial.saturated, parallel.saturated)
    if cpus >= 2:
        assert speedup >= 1.7


def test_bench_warm_cache_rerun(once, tmp_path):
    """A warm rerun of the same >= 128-cell grid through the result
    store must finish in < 10% of the cold run."""
    system = RemotePoweringSystem(distance=10e-3)
    controller = AdaptivePowerController()
    batch = build_grid()
    workers = 2 if (os.cpu_count() or 1) >= 2 else 1
    orchestrator = SweepOrchestrator(
        workers=workers, store=ResultStore(tmp_path / "sweep-cache"))

    def timed():
        t0 = time.perf_counter()
        cold = orchestrator.run_control(batch, system, controller,
                                        T_STOP)
        t_cold = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = orchestrator.run_control(batch, system, controller,
                                        T_STOP)
        t_warm = time.perf_counter() - t0
        return cold, t_cold, warm, t_warm

    cold, t_cold, warm, t_warm = once(timed)
    stats = orchestrator.stats

    report("Warm-cache rerun vs cold orchestrated sweep", [
        ("scenarios", float(len(batch)), ""),
        ("cold sweep (s)", t_cold, "computes + stores every cell"),
        ("warm rerun (s)", t_warm, "every cell a store hit"),
        ("warm/cold", t_warm / t_cold, "acceptance: < 0.10"),
        ("warm cache hits", float(stats.n_cached), f"of {len(batch)}"),
    ])

    assert stats.n_cached == len(batch)
    assert stats.n_computed == 0
    assert np.array_equal(cold.v_rect, warm.v_rect)
    assert np.array_equal(cold.saturated, warm.saturated)
    assert t_warm < 0.10 * t_cold


def test_bench_montecarlo_sharding_deterministic(once):
    """Sharded Monte Carlo through the orchestrator: chunk seeds are
    deterministic, so the merged draw is identical for 1 and 2
    workers."""
    from repro.variability import MonteCarlo, ParameterSpread

    mc = MonteCarlo([
        ParameterSpread("c_out", 250e-9, 0.1, relative=True),
        ParameterSpread("i_load", 352e-6, 0.05, relative=True),
    ], seed=7)

    def run():
        serial = SweepOrchestrator(workers=1).run_montecarlo(
            mc, _mc_charge_metrics, n_samples=128, seed=11)
        sharded = SweepOrchestrator(workers=2).run_montecarlo(
            mc, _mc_charge_metrics, n_samples=128, seed=11)
        return serial, sharded

    serial, sharded = once(run)
    assert set(serial) == {"t_charge"}
    assert serial["t_charge"].shape == (128,)
    assert np.array_equal(serial["t_charge"], sharded["t_charge"])


def _mc_charge_metrics(params):
    """Picklable Monte-Carlo kernel: charge time vs Co / load spread."""
    from repro.power import RectifierEnvelopeModel

    scenarios = [
        Scenario(rectifier=RectifierEnvelopeModel(c_out=c),
                 i_load=i_load)
        for c, i_load in zip(params["c_out"], params["i_load"])
    ]
    batch = ScenarioBatch(scenarios)
    return {"t_charge": batch.charge_times(5e-3, 2.75)}


def test_bench_lambda_profiles_fall_back_to_serial():
    """Unpicklable scenarios must degrade to the serial lane, not
    crash the sweep (no timing assertion — a correctness guard)."""
    system = RemotePoweringSystem(distance=10e-3)
    controller = AdaptivePowerController()
    batch = ScenarioBatch(
        [Scenario(distance=lambda t: 8e-3 + 2e-3 * (t / T_STOP)),
         Scenario(distance=10e-3)])
    orchestrator = SweepOrchestrator(workers=2)
    result = orchestrator.run_control(batch, system, controller, 20e-3)
    assert not orchestrator.stats.parallel
    assert orchestrator.stats.fallback_reason is not None
    ref = batch.run_control(system, controller, 20e-3)
    assert np.array_equal(ref.v_rect, result.v_rect)
    assert result.v_rect.shape == (2, 20)
    assert result.distance[0, -1] > result.distance[0, 0]
    assert result.distance[1, 0] == pytest.approx(10e-3)
