"""E9 (infrastructure) — circuit-engine accuracy and throughput.

Not a paper figure: this bench pins the substrate the reproduction
stands on.  Accuracy is checked against the analytic series-RLC step
response; throughput (Newton-solved transient steps per second) is the
pytest-benchmark timing target.
"""

import numpy as np
import pytest

from conftest import report
from repro.spice import Circuit, transient


def build_rlc():
    # Underdamped series RLC: R=20, L=1mH, C=1uF.
    ckt = Circuit("rlc_step")
    ckt.add_vsource("V1", "in", "0", 1.0)
    ckt.add_resistor("R1", "in", "a", 20.0)
    ckt.add_inductor("L1", "a", "b", 1e-3)
    ckt.add_capacitor("C1", "b", "0", 1e-6, ic=0.0)
    return ckt


def analytic_rlc_response(t, r=20.0, l=1e-3, c=1e-6):
    """Capacitor voltage of the underdamped series RLC step."""
    alpha = r / (2 * l)
    w0 = 1.0 / np.sqrt(l * c)
    wd = np.sqrt(w0**2 - alpha**2)
    return 1.0 - np.exp(-alpha * t) * (np.cos(wd * t)
                                       + alpha / wd * np.sin(wd * t))


def test_bench_spice_accuracy_and_speed(benchmark):
    n_steps = 4000
    t_stop = 2e-3
    dt = t_stop / n_steps

    def run():
        return transient(build_rlc(), t_stop=t_stop, dt=dt,
                         method="trap", use_ic=True)

    result = benchmark(run)
    v = result.voltage("b")
    expected = analytic_rlc_response(v.t)
    err = float(np.max(np.abs(v.v - expected)))
    rate = n_steps / benchmark.stats.stats.mean

    report("SPICE kernel", [
        ("max |error| vs analytic (V)", err, "trap, 4000 steps"),
        ("steps/second", rate, ""),
    ])
    assert err < 5e-3
    assert rate > 2000  # comfortably interactive for these circuits


def test_bench_nonlinear_newton_speed(benchmark):
    """Throughput with nonlinear devices (diode rectifier cell)."""
    from repro.power import build_rectifier_circuit

    def run():
        return transient(build_rectifier_circuit(), t_stop=4e-6,
                         dt=1 / (5e6 * 40), method="trap", use_ic=True)

    result = benchmark(run)
    assert result.voltage("vo").v[-1] >= 0.0


def test_bench_spice_solver_counters(benchmark):
    """Ungated: linear-solver work counters through the observability
    pipeline.  A spice study run under a recorder emits ``solve``
    events whose schema-v2 ``factorizations`` / ``pattern_reuses``
    fields quantify how much LU work the strategy performed vs how
    often it reused the frozen pattern/symbolic analysis — the ratio
    this report tracks across commits."""
    from repro.engine import SpiceBatch
    from repro.engine.parallel import SweepOrchestrator
    from repro.obs import MetricsRecorder

    batch = SpiceBatch.from_axes(amplitude=[1.25, 1.5, 1.75],
                                 i_load=[200e-6, 352e-6])

    def run():
        recorder = MetricsRecorder()
        orchestrator = SweepOrchestrator(recorder=recorder)
        orchestrator.run_spice(batch, t_stop=1e-6, dt=2e-9,
                               matrix="sparse")
        recorder.close()
        return [doc for doc in recorder.events()
                if doc["event"] == "solve"]

    solves = benchmark(run)
    fact = sum(doc["factorizations"] for doc in solves)
    reuse = sum(doc["pattern_reuses"] for doc in solves)
    report("SPICE solver counters (6-cell sparse study)", [
        ("solve events", float(len(solves)), ""),
        ("numeric factorizations", float(fact), ""),
        ("pattern reuses", float(reuse), "frozen-pattern refreshes"),
        ("reuse ratio", reuse / max(fact, 1),
         "refreshes per factorization"),
    ])
    assert fact > 0
    assert reuse > 0
