#!/usr/bin/env python3
"""Summarize and gate session-metrics JSONL files (``repro.obs``).

Reads one or more ``--metrics-jsonl`` session files, validates every
event against the versioned schema (``repro.obs.EVENT_SCHEMAS``), and
prints a human summary (or ``--json``).  Two CI gates:

* ``--min-warm-cache-hit-rate R`` — the *last* sweep event across the
  given files must report ``cache_hit_rate >= R`` (the warm rerun of
  an identical study must replay from the content-addressed store);
* ``--require-events T1,T2,...`` — every listed event type must occur
  at least once (catches silently-dead instrumentation).

Exit codes: 0 ok, 1 a gate failed, 2 schema validation failed.

Used by the ``metrics-gate`` CI job::

    python benchmarks/metrics_report.py metrics.jsonl \
        --min-warm-cache-hit-rate 0.95 --require-events sweep,chunk,store
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs import (  # noqa: E402
    MetricsSchemaError,
    read_jsonl,
    summarize_events,
    warm_cache_hit_rate,
)


def _fmt_rate(value):
    return "-" if value is None else f"{value:.1%}"


def render_text(summary, files):
    lines = [f"metrics report — {len(files)} file(s), {summary['events']} events"]
    for path in files:
        lines.append(f"  {path}")
    sweeps = summary["sweeps"]
    lines.append(
        f"sweeps   : {sweeps['runs']} runs, {sweeps['cells']} cells "
        f"({sweeps['cached']} cached / {sweeps['computed']} computed), "
        f"hit rate {_fmt_rate(sweeps['cache_hit_rate'])}, "
        f"warm {_fmt_rate(sweeps['warm_cache_hit_rate'])}"
    )
    chunks = summary["chunks"]
    if chunks["count"]:
        elapsed = chunks["elapsed"]
        lines.append(
            f"chunks   : {chunks['count']}, "
            f"p50 {elapsed.get('p50_s', 0.0):.3g} s, "
            f"max {elapsed.get('max_s', 0.0):.3g} s"
        )
    solver = summary["solver"]
    if solver["chunks"]:
        lines.append(
            f"solver   : {solver['cells']} cells, "
            f"{solver['accepted_steps']} accepted steps, "
            f"{solver['newton_iters']} newton iters "
            f"({solver['newton_rejects']} newton / "
            f"{solver['lte_rejects']} LTE rejects)"
        )
    deltas = summary["deltas"]
    if deltas["runs"]:
        lines.append(
            f"deltas   : {deltas['runs']} runs, {deltas['cells']} cells, "
            f"{deltas['changed']} recomputed, {deltas['replayed']} replayed, "
            f"{deltas['replay_miss']} replay misses"
        )
    batches = summary["batches"]
    if batches["count"]:
        lines.append(
            f"batches  : {batches['count']}, {batches['cells']} cells, "
            f"{batches['deduped']} deduped, {batches['cached']} cached"
        )
    jobs = summary["jobs"]
    if jobs["count"]:
        lines.append(
            f"jobs     : {jobs['count']} {dict(jobs['by_state'])}, "
            f"latency p50 {jobs['latency'].get('p50_s', 0.0):.3g} s"
        )
    by_type = ", ".join(f"{k}={v}" for k, v in sorted(summary["by_type"].items()))
    lines.append(f"by type  : {by_type}")
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+", help="metrics JSONL session file(s)")
    parser.add_argument(
        "--json", action="store_true", help="emit the summary document as JSON"
    )
    parser.add_argument(
        "--min-warm-cache-hit-rate",
        type=float,
        metavar="R",
        help="fail (exit 1) when the last sweep event's cache_hit_rate < R",
    )
    parser.add_argument(
        "--require-events",
        metavar="T1,T2,...",
        help="fail (exit 1) unless each listed event type occurs at least once",
    )
    args = parser.parse_args(argv)

    events = []
    for path in args.files:
        try:
            events.extend(read_jsonl(path))
        except OSError as exc:
            print(f"cannot read {path}: {exc}", file=sys.stderr)
            return 2
        except MetricsSchemaError as exc:
            print(f"schema validation FAILED: {exc}", file=sys.stderr)
            return 2

    summary = summarize_events(events)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(render_text(summary, args.files))

    failures = []
    if args.min_warm_cache_hit_rate is not None:
        rate = warm_cache_hit_rate(events)
        if rate is None:
            failures.append("warm-cache gate: no sweep event found")
        elif rate < args.min_warm_cache_hit_rate:
            failures.append(
                f"warm-cache gate: last sweep hit rate {rate:.1%} < "
                f"{args.min_warm_cache_hit_rate:.1%}"
            )
    if args.require_events:
        present = summary["by_type"]
        for kind in args.require_events.split(","):
            kind = kind.strip()
            if kind and not present.get(kind):
                failures.append(f"required event type never emitted: {kind}")

    if failures:
        print("\nmetrics gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    if args.min_warm_cache_hit_rate is not None or args.require_events:
        print("\nmetrics gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
