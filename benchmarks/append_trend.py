#!/usr/bin/env python3
"""Append one nightly benchmark snapshot to a JSONL trend file.

The nightly CI job runs the full suite with ``--benchmark-json``,
then calls this script to append a single JSON line — the gated
benchmark minima plus run metadata — to ``BENCH_trend.jsonl``.  The
file is carried between runs with ``actions/cache`` and uploaded as
the ``BENCH_trend`` artifact, so perf drift is visible across nights
without committing churn to the repository::

    python benchmarks/append_trend.py BENCH_nightly.json BENCH_trend.jsonl \
        --run-id "$GITHUB_RUN_ID" --ref "$GITHUB_SHA"

Reuses :func:`check_regression.load_results` and the gated benchmark
set, so the trend rows track exactly what the PR regression gate
watches.
"""

from __future__ import annotations

import argparse
import json
import sys
from datetime import datetime, timezone
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from check_regression import DEFAULT_GATE, load_results  # noqa: E402


def build_row(results, run_id="", ref="", timestamp=None):
    """One compact trend row: gated minima only (the full result file
    is already archived per-run as an artifact)."""
    gated = {
        name: round(results[name]["min"], 6) for name in DEFAULT_GATE if name in results
    }
    missing = sorted(set(DEFAULT_GATE) - set(gated))
    row = {
        "ts": timestamp or datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "run_id": run_id,
        "ref": ref,
        "n_benchmarks": len(results),
        "gated_min_s": gated,
    }
    if missing:
        row["missing"] = missing
    return row


def is_duplicate(row, trend_path):
    """Whether the trend file already records this exact snapshot — the
    same commit ref with the same gated minima.  A re-run of the same
    nightly (cache restored, workflow retried) should not widen the
    trend with rows that carry no new information; a re-run whose
    timings moved still lands, because the minima differ."""
    try:
        fh = open(trend_path)
    except OSError:
        return False
    with fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                prior = json.loads(line)
            except json.JSONDecodeError:
                continue  # a torn row must not block new appends
            if (
                prior.get("ref") == row["ref"]
                and prior.get("gated_min_s") == row["gated_min_s"]
            ):
                return True
    return False


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results", help="pytest-benchmark JSON file")
    parser.add_argument("trend", help="JSONL trend file to append to")
    parser.add_argument("--run-id", default="", help="CI run identifier")
    parser.add_argument("--ref", default="", help="commit SHA or ref")
    parser.add_argument(
        "--timestamp", default=None, help="ISO timestamp override (default: now, UTC)"
    )
    args = parser.parse_args(argv)

    try:
        results = load_results(args.results)
    except OSError as exc:
        raise SystemExit(f"cannot read results file: {exc}")
    row = build_row(results, run_id=args.run_id, ref=args.ref, timestamp=args.timestamp)
    if is_duplicate(row, args.trend):
        print(
            f"skipped duplicate trend row: ref {args.ref or '<none>'!r} with "
            f"identical gated minima is already recorded in {args.trend}"
        )
        return 0
    with open(args.trend, "a") as fh:
        fh.write(json.dumps(row, sort_keys=True) + "\n")
    n_rows = sum(1 for _ in open(args.trend))
    print(
        f"appended trend row ({len(row['gated_min_s'])} gated benches) "
        f"to {args.trend} — {n_rows} rows total"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
