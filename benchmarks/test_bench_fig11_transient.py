"""E2 / Fig. 11 — the power-management transient.

Regenerates the paper's end-to-end simulation: Co charges to 2.75 V at
~270 us from the 5 mW matched level; an 18-bit downlink at 100 kbps is
detected at every phi1 edge; an uplink follows at 520 us by shorting the
rectifier input; the rectifier output never drops below 2.1 V.
"""

import pytest

from conftest import report
from repro import PAPER, RemotePoweringSystem


def run_fig11():
    system = RemotePoweringSystem(distance=10e-3)
    return system.fig11_transient()


def test_bench_fig11_transient(once):
    result = once(run_fig11)

    report("Fig. 11: power-management transient", [
        ("Co -> 2.75 V (us)", result.charge_time_to_2v75 * 1e6,
         "paper: 270"),
        ("downlink bits", f"{len(result.downlink_sent)} sent",
         "all recovered" if result.downlink_ok else "ERRORS"),
        ("uplink bits", f"{len(result.uplink_sent)} sent",
         "all recovered" if result.uplink_ok else "ERRORS"),
        ("min Vo during comms (V)", result.v_min_during_comms,
         "paper: >= 2.1"),
        ("final Vo (V)", float(result.v_out.v[-1]), ""),
    ])
    report("Fig. 11 event timeline (us)",
           [(name, t * 1e6) for name, t in result.events])

    assert result.charge_time_to_2v75 == pytest.approx(
        PAPER.fig11_charge_time, rel=0.15)
    assert result.downlink_ok
    assert result.uplink_ok
    assert result.rail_ok
    # The rail stays comfortably inside the clamp ceiling too.
    assert result.v_out.max() <= PAPER.rectifier_clamp_voltage * 1.05
