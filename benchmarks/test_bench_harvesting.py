"""Section I context bench — harvesting vs remote powering.

The paper motivates remote powering by the inadequacy of batteries and
the modesty of harvesting; this bench makes the comparison quantitative:
time-averaged harvest of each surveyed source (ref [7]) against the
5 mW the inductive link delivers at 10 mm, in terms of the sensor duty
cycle each can sustain.
"""

import pytest

from conftest import report
from repro.harvest import HARVEST_LIBRARY, HybridSupply
from repro.power import SENSOR_HIGH_POWER


def test_bench_harvest_vs_link(once):
    p_active = SENSOR_HIGH_POWER.power  # 1.3 mA * 1.8 V = 2.34 mW

    def run():
        rows = []
        for name, source in sorted(HARVEST_LIBRARY.items()):
            hybrid = HybridSupply(source, size_cm=1.0)
            rows.append(hybrid.comparison_row(p_link=5e-3,
                                              p_active=p_active))
        return rows

    rows = once(run)
    report("Harvesting (1 cm transducer) vs the inductive link",
           [(name, uw, f"{duty * 100:.2f}%", f"{link * 100:.0f}%")
            for name, uw, duty, link in rows],
           header=["source", "avg uW", "meas. duty", "link duty"])

    # The paper's premise, quantified: every harvester sustains under
    # 5% measurement duty; the link sustains 100%.
    for name, uw, duty, link_duty in rows:
        assert duty < 0.05
        assert link_duty == 1.0
    # But harvesting is not useless: a TEG buffers a measurement in
    # minutes — the "assist the implanted batteries" role.
    teg = HybridSupply(HARVEST_LIBRARY["thermoelectric"], 1.0)
    assert teg.time_to_buffer_one_measurement() < 600.0
    assert teg.measurements_per_day() > 100
