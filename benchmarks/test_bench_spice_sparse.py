"""Gated bench: the sparse CSR strategy vs the dense adaptive backend.

Two workloads pin the tentpole claims of the sparse SPICE core:

* ``test_bench_spice_sparse_ladder`` — a 256-section distributed
  rectifier (RC ladder with a diode tap at every node, 259 MNA
  unknowns).  The dense adaptive backend restamps and LU-factorizes an
  O(n^2) matrix per Newton iteration; the sparse strategy assembles on
  a frozen CSR pattern, factorizes with SuperLU under the structurally
  symmetric MMD ordering, and hoists the per-step companion-model
  loops into slot-array kernels.
* ``test_bench_spice_sparse_family`` — a 256-cell rectifier family
  through the lockstep batch: one symbolic analysis shared by all
  cells (SharedPatternLU), numeric refactorization as vectorized
  (N, nnz) array ops, vs the seed approach of one dense adaptive run
  per cell.

Both pin the time grid (min_dt = max_dt) so the comparison is pure
per-step engine cost at identical discretization, and both assert
matched answers (<= 1e-9 V on the shared rail), not just speed.
"""

import time

import numpy as np

from conftest import report
from repro.power import build_rectifier_circuit
from repro.spice import Circuit, sine, transient, transient_batch

# -- distributed-rectifier ladder --------------------------------------
SECTIONS = 256
R_SECTION = 5.0
C_SECTION = 20e-12
C_OUT = 100e-9
R_LOAD = 10e3
FREQ = 5e6
DT = 2e-9
T_STOP = 0.4e-6

#: Acceptance bar: the sparse path must beat the dense adaptive
#: backend by at least this factor on both workloads...
MIN_SPEEDUP = 5.0
#: ...while deviating from the dense reference by at most this much.
MAX_DEVIATION = 1e-9


def build_ladder():
    """RC transmission-line ladder with a rectifying diode at every
    node, all taps feeding one smoothed output rail."""
    ckt = Circuit(f"ladder{SECTIONS}")
    ckt.add_vsource("V1", "n0", "0", sine(2.0, FREQ))
    for k in range(SECTIONS):
        ckt.add_resistor(f"R{k}", f"n{k}", f"n{k + 1}", R_SECTION)
        ckt.add_capacitor(f"C{k}", f"n{k + 1}", "0", C_SECTION, ic=0.0)
        ckt.add_diode(f"D{k}", f"n{k + 1}", "vo")
    ckt.add_capacitor("Co", "vo", "0", C_OUT, ic=0.0)
    ckt.add_resistor("RL", "vo", "0", R_LOAD)
    return ckt


def _run_ladder(matrix, stats=None):
    # The pinned grid (min_dt = max_dt = DT) keeps both strategies on
    # the identical accepted time points.
    return transient(build_ladder(), T_STOP, DT, method="adaptive",
                     use_ic=True, min_dt=DT, max_dt=DT, matrix=matrix,
                     stats_out=stats)


def test_bench_spice_sparse_ladder(benchmark):
    t0 = time.perf_counter()
    dense = _run_ladder("dense")
    t_dense = time.perf_counter() - t0
    t0 = time.perf_counter()
    _run_ladder("dense")
    t_dense = min(t_dense, time.perf_counter() - t0)

    stats = {}
    sparse = benchmark.pedantic(
        lambda: _run_ladder("sparse", stats), rounds=3, iterations=1)
    t_sparse = benchmark.stats.stats.min

    assert np.array_equal(dense.t, sparse.t), "grids must match for parity"
    deviation = float(np.max(np.abs(
        dense.voltage("vo").v - sparse.voltage("vo").v)))
    speedup = t_dense / t_sparse

    ladder = build_ladder()
    ladder.build()
    report("SPICE sparse CSR strategy (256-section ladder)", [
        ("MNA unknowns", float(ladder.n_unknowns), ""),
        ("dense adaptive (s)", t_dense, "per-iteration dense LU"),
        ("sparse adaptive (s)", t_sparse, "frozen CSR + SuperLU"),
        ("speedup", speedup, f">= {MIN_SPEEDUP:g} required"),
        ("max |vo| deviation (V)", deviation,
         f"<= {MAX_DEVIATION:g} required"),
        ("numeric factorizations", float(stats["factorizations"]), ""),
        ("pattern reuses", float(stats["pattern_reuses"]), ""),
    ])
    assert deviation <= MAX_DEVIATION
    assert speedup >= MIN_SPEEDUP


# -- 256-cell rectifier family -----------------------------------------
N_CELLS = 256
FAM_FREQ = 13.56e6
FAM_DT = 1e-9
FAM_T_STOP = 0.4e-6


def _family_circuits():
    return [build_rectifier_circuit(
        v_in_amplitude=1.0 + 1.5 * j / N_CELLS, freq=FAM_FREQ)
        for j in range(N_CELLS)]


def _seed_dense_loop():
    """The seed approach: one dense adaptive run per cell."""
    return [transient(ckt, FAM_T_STOP, FAM_DT, method="adaptive",
                      use_ic=True, min_dt=FAM_DT, max_dt=FAM_DT,
                      matrix="dense")
            for ckt in _family_circuits()]


def _sparse_family():
    return transient_batch(_family_circuits(), FAM_T_STOP, FAM_DT,
                           method="adaptive", use_ic=True,
                           min_dt=FAM_DT, max_dt=FAM_DT, matrix="sparse")


def test_bench_spice_sparse_family(benchmark):
    t0 = time.perf_counter()
    refs = _seed_dense_loop()
    t_seed = time.perf_counter() - t0

    family = benchmark.pedantic(_sparse_family, rounds=3, iterations=1)
    t_family = benchmark.stats.stats.min

    assert family.t.size == refs[0].t.size, "grids must match for parity"
    deviation = max(
        float(np.max(np.abs(ref.voltage("vo").v - family.voltage("vo")[i])))
        for i, ref in enumerate(refs))
    speedup = t_seed / t_family

    report("SPICE sparse family kernel (256-cell rectifier)", [
        ("cells", float(N_CELLS), f"{FAM_T_STOP*1e6:g} us @ "
                                  f"{FAM_FREQ*1e-6:g} MHz"),
        ("seed per-cell dense (s)", t_seed, "dense adaptive loop"),
        ("sparse lockstep family (s)", t_family, "SharedPatternLU"),
        ("speedup", speedup, f">= {MIN_SPEEDUP:g} required"),
        ("max |vo| deviation (V)", deviation,
         f"<= {MAX_DEVIATION:g} required"),
        ("numeric factorizations", float(family.stats["factorizations"]),
         "N per batched refactor"),
        ("pattern reuses", float(family.stats["pattern_reuses"]),
         "symbolic analysis ran once"),
    ])
    assert deviation <= MAX_DEVIATION
    assert speedup >= MIN_SPEEDUP
