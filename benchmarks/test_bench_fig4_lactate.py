"""E1 / Fig. 4 — lactate calibration curves (cLODx vs wtLODx).

Regenerates the paper's measured characteristic: delta-current density
(uA/cm^2) versus log10(lactate / mM) for both enzymes on MWCNT-modified
screen-printed electrodes.  Shape checks: cLODx above wtLODx everywhere,
both monotone, end-point magnitudes within band of the figure.
"""

import numpy as np
import pytest

from conftest import report
from repro.sensor import CLODX, WTLODX, ElectronicInterface


def generate_fig4():
    curves = {}
    for enzyme in (CLODX, WTLODX):
        ei = ElectronicInterface.for_enzyme(enzyme)
        curves[enzyme.name] = ei.calibration_curve()
    return curves


def test_bench_fig4_lactate(once):
    curves = once(generate_fig4)

    c_curve = curves["cLODx"]
    w_curve = curves["wtLODx"]
    rows = []
    for (log_c, cj), (_, wj) in zip(c_curve.rows(), w_curve.rows()):
        rows.append((log_c, cj, wj))
    report("Fig. 4: dJ (uA/cm^2) vs log10[lactate (mM)]",
           rows, header=["log10 C", "cLODx", "wtLODx"])
    report("Fig. 4 anchors (paper ~4.3 / ~2.0 at 1 mM)",
           [("cLODx @ 1 mM", c_curve.delta_current_ua_cm2[-1]),
            ("wtLODx @ 1 mM", w_curve.delta_current_ua_cm2[-1])])

    # Shape: commercial enzyme wins everywhere (paper's key comparison).
    for cj, wj in zip(c_curve.delta_current_ua_cm2,
                      w_curve.delta_current_ua_cm2):
        assert cj > wj
    # Both monotone increasing in concentration.
    for curve in (c_curve, w_curve):
        dj = curve.delta_current_ua_cm2
        assert all(a < b for a, b in zip(dj, dj[1:]))
    # Magnitudes within ~20% of the figure's end points.
    assert c_curve.delta_current_ua_cm2[-1] == pytest.approx(4.3, rel=0.2)
    assert w_curve.delta_current_ua_cm2[-1] == pytest.approx(2.0, rel=0.2)
    # cLODx/wtLODx sensitivity ratio ~2x (paper's visual factor).
    ratio = (c_curve.sensitivity_per_decade()
             / w_curve.sensitivity_per_decade())
    assert 1.5 < ratio < 3.0
