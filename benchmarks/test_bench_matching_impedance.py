"""E5 / Section IV-C — the power-management operating point.

Paper numbers: ~5 mW to a matched load at 10 mm; ~3 mW while
transmitting an ASK logic 1 and ~1 mW for a logic 0; an average rectifier
input impedance of ~150 ohm used to select the CA/CB matching capacitors.
"""

import pytest

from conftest import report
from repro import PAPER, RemotePoweringSystem
from repro.power import measure_input_resistance


def test_bench_operating_point(once):
    def build():
        system = RemotePoweringSystem(distance=10e-3)
        p10 = system.available_power()
        p_hi = p10 * system.ask_mod.amplitude_for_bit(1) ** 2
        p_lo = p10 * system.ask_mod.amplitude_for_bit(0) ** 2
        match = system.matching_network()
        return system, p10, p_hi, p_lo, match

    system, p10, p_hi, p_lo, match = once(build)

    report("Section IV-C operating point", [
        ("P matched @ 10 mm (mW)", p10 * 1e3, "paper: 5"),
        ("P during ASK 1 (mW)", p_hi * 1e3, "paper: ~3"),
        ("P during ASK 0 (mW)", p_lo * 1e3, "paper: ~1"),
        ("CA series (pF)", match.c_series * 1e12, ""),
        ("CB parallel (pF)", match.c_parallel * 1e12, ""),
        ("match residual", match.match_error(), ""),
    ])

    assert p10 == pytest.approx(PAPER.power_matched_10mm, rel=0.25)
    # ASK levels relative to idle: 3/5 and 1/5 by construction of the
    # modulation depth — so the *ratio* high/low is 3:1 as in the paper.
    assert p_hi / p_lo == pytest.approx(3.0, rel=0.01)
    assert p_hi == pytest.approx(PAPER.power_ask_high, rel=0.3)
    assert p_lo == pytest.approx(PAPER.power_ask_low, rel=0.3)
    assert match.match_error() < 1e-9


def test_bench_rectifier_input_impedance(once):
    """The 150-ohm simulation, rerun on our rectifier netlist."""
    zin = once(measure_input_resistance, power_level=5e-3, cycles=30,
               points_per_cycle=40)
    report("Rectifier average input impedance @ 5 mW", [
        ("V_rms/I_rms (ohm)", zin["z_rms"], "paper: ~150"),
        ("V_rms^2/P (ohm)", zin["r_power"], ""),
        ("drive amplitude (V)", zin["v_amplitude"], ""),
        ("absorbed power (mW)", zin["p_in"] * 1e3, "target: 5"),
    ])
    # Same order as the paper's 150 ohm.
    assert 80 < zin["z_rms"] < 400
    assert zin["p_in"] == pytest.approx(5e-3, rel=0.02)
