"""Engine acceptance bench — batched sweeps vs scalar loops.

The unified engine's reason to exist at production scale: a power-vs-
distance x load sweep of >= 64 adaptive-control scenarios evaluated as
one vectorized ScenarioBatch must beat the equivalent loop of scalar
``AdaptivePowerController.run`` calls by >= 10x, while reproducing the
scalar traces within documented tolerances (1e-9 absolute on the rail).
"""

import time

import numpy as np
import pytest

from conftest import report
from repro import RemotePoweringSystem
from repro.core import AdaptivePowerController
from repro.engine import Scenario, ScenarioBatch, SweepOrchestrator

T_STOP = 40e-3


def build_grid():
    """8 x 8 distance x load grid: 64 scenarios."""
    distances = np.linspace(6e-3, 20e-3, 8)
    loads = np.linspace(200e-6, 1.3e-3, 8)
    return ScenarioBatch.from_grid(distances, loads)


def scalar_reference(system, controller, batch):
    """The pre-engine way: one full scalar control run per scenario.

    ``AdaptivePowerController.run`` always draws the system implant's
    load, so the scalar equivalent of a load-swept scenario swaps the
    load into the implant for the duration of its run.
    """
    implant = system.implant
    results = []
    for sc in batch.scenarios:
        i_load = sc.i_load
        implant.load_current = lambda measuring=False: i_load
        try:
            results.append(controller.run(
                system, lambda t, d=sc.distance: d, T_STOP))
        finally:
            del implant.load_current  # restore the class method
    return results


def test_bench_batch_speedup(once):
    """The acceptance criterion: >= 10x over the scalar loop at >= 64
    scenarios, with matching traces."""
    system = RemotePoweringSystem(distance=10e-3)
    controller = AdaptivePowerController()
    batch = build_grid()
    assert len(batch) >= 64

    def timed():
        t0 = time.perf_counter()
        scalar = scalar_reference(system, controller, batch)
        t_scalar = time.perf_counter() - t0
        t0 = time.perf_counter()
        batched = SweepOrchestrator().run_control(batch, system,
                                                  controller, T_STOP)
        t_batch = time.perf_counter() - t0
        return scalar, t_scalar, batched, t_batch

    scalar, t_scalar, batched, t_batch = once(timed)
    speedup = t_scalar / t_batch

    report("Batched control sweep vs scalar loop", [
        ("scenarios", float(len(batch)), ""),
        ("control steps each", float(batched.times.size), ""),
        ("scalar loop (s)", t_scalar, ""),
        ("ScenarioBatch (s)", t_batch, ""),
        ("speedup", speedup, "acceptance: >= 10x"),
    ])

    # Traces must agree scenario by scenario (documented tolerance:
    # 1e-9 V absolute on the rail, 1e-9 on the drive command — the only
    # divergence is float reassociation in the fused array ops).
    worst_v = worst_s = 0.0
    for i, steps in enumerate(scalar):
        v_ref = np.array([s.v_rect for s in steps])
        s_ref = np.array([s.drive_scale for s in steps])
        worst_v = max(worst_v, np.abs(batched.v_rect[i] - v_ref).max())
        worst_s = max(worst_s,
                      np.abs(batched.drive_scale[i] - s_ref).max())
    report("Batch-vs-scalar trace agreement", [
        ("worst |dVo| (V)", worst_v, "tolerance 1e-9"),
        ("worst |dscale|", worst_s, "tolerance 1e-9"),
    ])
    assert worst_v < 1e-9
    assert worst_s < 1e-9
    assert speedup >= 10.0


def test_bench_batch_scales_sublinearly(once):
    """Extension: quadrupling the batch should cost far less than 4x
    (the Python-level loop count is independent of batch size)."""
    system = RemotePoweringSystem(distance=10e-3)
    controller = AdaptivePowerController()
    small = ScenarioBatch.from_grid(np.linspace(6e-3, 20e-3, 4),
                                    np.linspace(200e-6, 1.3e-3, 4))
    large = ScenarioBatch.from_grid(np.linspace(6e-3, 20e-3, 8),
                                    np.linspace(200e-6, 1.3e-3, 8))

    def timed():
        # Best-of-3 per size so one scheduler hiccup on a shared CI
        # runner cannot flip the ratio assertion.
        def best(batch):
            times = []
            for _ in range(3):
                t0 = time.perf_counter()
                batch.run_control(system, controller, T_STOP)
                times.append(time.perf_counter() - t0)
            return min(times)

        return best(small), best(large)

    t_small, t_large = once(timed)
    report("Batch scaling", [
        ("16 scenarios (s)", t_small, ""),
        ("64 scenarios (s)", t_large, ""),
        ("cost ratio", t_large / t_small, "<< 4"),
    ])
    assert t_large < 3.0 * t_small


def test_bench_moving_scenarios_match_scalar(once):
    """Time-varying distance profiles (posture changes) also batch."""
    system = RemotePoweringSystem(distance=10e-3)
    controller = AdaptivePowerController()

    def step_profile(t):
        return 8e-3 if t < 20e-3 else 14e-3

    batch = ScenarioBatch([Scenario(distance=step_profile),
                           Scenario(distance=10e-3)])

    def run():
        batched = batch.run_control(system, controller, T_STOP)
        scalar = controller.run(system, step_profile, T_STOP)
        return batched, scalar

    batched, scalar = once(run)
    v_ref = np.array([s.v_rect for s in scalar])
    assert np.abs(batched.v_rect[0] - v_ref).max() < 1e-9
    assert batched.distance[0, 0] == pytest.approx(8e-3)
    assert batched.distance[0, -1] == pytest.approx(14e-3)
