"""E8 / Section III-A — data-link rates and robustness.

Paper: downlink ASK at 100 kbps; uplink LSK at 66.6 kbps, "slightly lower
than the downlink bit-rate due to the computational time required to
perform a real-time threshold check".  Plus the modulation-depth BER
ablation.
"""

import numpy as np
import pytest

from conftest import report
from repro import RemotePoweringSystem
from repro.comms import (
    AskDemodulator,
    AskModulator,
    LskDetector,
    ask_ber_theory,
    prbs,
)


def test_bench_link_rates(once):
    def run():
        det = LskDetector(sample_time=2e-6, compute_time=5e-6)
        max_up = det.max_bit_rate(samples_per_bit=2)
        system = RemotePoweringSystem(distance=10e-3)
        fig11 = system.fig11_transient()
        return max_up, fig11, system

    max_up, fig11, system = once(run)
    report("Data-link rates", [
        ("downlink (kbps)", 100.0, "paper: 100"),
        ("uplink limit from threshold check (kbps)", max_up / 1e3,
         "paper: 66.6"),
        ("downlink errors", str(fig11.downlink_sent.hamming_distance(
            fig11.downlink_received)), "paper: 0"),
        ("uplink errors", str(fig11.uplink_sent.hamming_distance(
            fig11.uplink_received)), "paper: 0"),
        ("LSK supply-current contrast", system.lsk_contrast(), ""),
    ])
    # The computation-limited uplink sits below the downlink rate and in
    # the paper's band.
    assert 55e3 < max_up < 80e3
    assert fig11.downlink_ok and fig11.uplink_ok


def test_bench_ask_depth_ber_ablation(once):
    """Ablation: modulation depth vs noise robustness.  Deeper ASK
    separates the levels but costs average delivered power — the paper's
    depth (~0.42, giving 3:1 power levels) sits in the useful middle."""

    def sweep():
        rng_seed = 21
        bits = prbs(192)
        rows = []
        for depth in (0.15, 0.30, 0.42, 0.60, 0.80):
            mod = AskModulator(depth=depth)
            w = mod.waveform(bits, delay=10e-6, noise_rms=0.22,
                             rng=np.random.default_rng(rng_seed))
            demod = AskDemodulator()
            ber = demod.bit_error_rate(bits, w, 10e-6)
            p_avg = 0.5 * (mod.amplitude_for_bit(1) ** 2
                           + mod.amplitude_for_bit(0) ** 2)
            rows.append((depth, ber, ask_ber_theory(depth, 1 / 0.22),
                         p_avg))
        return rows

    rows = once(sweep)
    report("ASK depth ablation (noise rms = 0.22 of amplitude)",
           rows, header=["depth", "BER (sim)", "BER (theory)",
                         "avg power"])
    bers = [r[1] for r in rows]
    powers = [r[3] for r in rows]
    # Robustness improves with depth; delivered power decreases.
    assert bers[0] >= bers[-1]
    assert all(a >= b for a, b in zip(powers, powers[1:]))
    # Theory tracks simulation direction.
    theories = [r[2] for r in rows]
    assert all(a >= b for a, b in zip(theories, theories[1:]))
