#!/usr/bin/env python3
"""Perf-regression gate for the CI benchmark job.

Compares a ``pytest-benchmark --benchmark-json`` result file against
the committed baseline (``benchmarks/BENCH_baseline.json``) and exits
nonzero when any *gated* benchmark slowed down by more than
``--max-slowdown`` (default 1.30 = fail on >30% slowdown).  The gated
set — the scenario-batch and spice-kernel benches that pin the
engine's hot paths — is recorded in the baseline file itself.

Refresh the baseline (after an intentional perf change)::

    PYTHONPATH=src python -m pytest benchmarks -q \
        --benchmark-json=BENCH_local.json
    python benchmarks/check_regression.py BENCH_local.json \
        --update-baseline benchmarks/BENCH_baseline.json

Only ``stats.min`` (best round) is compared: it is the most
noise-resistant point estimate a shared CI runner can produce.
"""

from __future__ import annotations

import argparse
import json
import sys

#: Benchmarks whose regressions fail CI (recorded into the baseline).
DEFAULT_GATE = [
    "test_bench_batch_speedup",
    "test_bench_parallel_speedup_and_parity",
    "test_bench_service_microbatch_speedup",
    "test_bench_spice_accuracy_and_speed",
    "test_bench_nonlinear_newton_speed",
    "test_bench_spice_adaptive",
    "test_bench_multiworker_saturation",
    "test_bench_spice_sparse_ladder",
    "test_bench_spice_sparse_family",
]


def load_results(path):
    """{benchmark name: {"min": s, "mean": s}} from a
    pytest-benchmark JSON file (or from a previous baseline file)."""
    with open(path) as fh:
        doc = json.load(fh)
    if "benchmarks" in doc and isinstance(doc["benchmarks"], dict):
        return doc["benchmarks"]  # already a compact baseline
    return {
        bench["name"]: {
            "min": bench["stats"]["min"],
            "mean": bench["stats"]["mean"],
        }
        for bench in doc.get("benchmarks", [])
    }


def write_baseline(path, results, gate):
    missing = [name for name in gate if name not in results]
    if missing:
        raise SystemExit(
            f"cannot write baseline: gated benchmarks missing from "
            f"results: {missing}"
        )
    with open(path, "w") as fh:
        json.dump({"gate": gate, "benchmarks": results}, fh, indent=2)
        fh.write("\n")
    print(
        f"baseline written to {path} "
        f"({len(results)} benchmarks, {len(gate)} gated)"
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results", help="pytest-benchmark JSON file")
    parser.add_argument("--baseline", default="benchmarks/BENCH_baseline.json")
    parser.add_argument(
        "--max-slowdown",
        type=float,
        default=1.30,
        help="fail when min time exceeds baseline * this (default 1.30)",
    )
    parser.add_argument(
        "--update-baseline",
        metavar="PATH",
        help="write PATH from the results instead of gating",
    )
    args = parser.parse_args(argv)

    try:
        results = load_results(args.results)
    except OSError as exc:
        raise SystemExit(f"cannot read results file: {exc}")
    if args.update_baseline:
        write_baseline(args.update_baseline, results, DEFAULT_GATE)
        return 0

    try:
        with open(args.baseline) as fh:
            baseline_doc = json.load(fh)
    except OSError as exc:
        raise SystemExit(f"cannot read baseline file: {exc}")
    gate = baseline_doc.get("gate", DEFAULT_GATE)
    baseline = baseline_doc["benchmarks"]

    failures = []
    print(
        f"{'benchmark':<42s} {'baseline':>10s} {'now':>10s} "
        f"{'ratio':>7s}  gate"
    )
    for name in sorted(set(baseline) | set(results)):
        gated = name in gate
        if name not in results:
            status = "MISSING" if gated else "absent"
            print(f"{name:<42s} {'-':>10s} {'-':>10s} {'-':>7s}  {status}")
            if gated:
                failures.append(f"{name}: gated benchmark missing from results")
            continue
        if name not in baseline:
            now = results[name]["min"]
            print(f"{name:<42s} {'-':>10s} {now:>10.4g} {'-':>7s}  new")
            continue
        ratio = results[name]["min"] / baseline[name]["min"]
        verdict = ""
        if gated:
            verdict = "ok" if ratio <= args.max_slowdown else "FAIL"
            if ratio > args.max_slowdown:
                failures.append(
                    f"{name}: {ratio:.2f}x baseline "
                    f"(limit {args.max_slowdown:.2f}x)"
                )
        print(
            f"{name:<42s} {baseline[name]['min']:>10.4g} "
            f"{results[name]['min']:>10.4g} {ratio:>6.2f}x  {verdict}"
        )
    if failures:
        print("\nperf-regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(
        f"\nperf-regression gate passed "
        f"({len(gate)} gated benchmarks within {args.max_slowdown:.2f}x)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
