"""Gated bench: the batchable adaptive transient backend vs the seed
per-cell fixed-step loop on the paper's rectifier.

The study shape is an amplitude x load grid of the Fig. 8 rectifier
cell — exactly what `repro sweep --study spice` dispatches.  The seed
approach integrates each cell with its own fixed-step trapezoidal run
(a fresh dense assembly and solve per Newton iteration per step); the
adaptive backend advances the whole family in lockstep on the same
time grid, with the linear stamps assembled once per step size and all
diodes of all cells evaluated as one vectorized block.

Matched accuracy is asserted, not assumed: every cell's stored rail
node (vo) must deviate by at most 1e-6 V from its own seed fixed-step
reference across the full trace.
"""

import time

import numpy as np

from conftest import report
from repro.power import build_rectifier_circuit
from repro.spice import transient, transient_batch

FREQ = 5e6
PERIOD = 1.0 / FREQ
T_STOP = 2e-6                 # 10 carrier cycles
DT = PERIOD / 100
AMPLITUDES = (1.25, 1.4, 1.55, 1.75)
LOADS = (200e-6, 352e-6)
CELLS = [(a, l) for a in AMPLITUDES for l in LOADS]

#: Accuracy budget of the acceptance criterion: max |vo_adaptive -
#: vo_fixed| over every cell and stored time point.
MAX_DEVIATION = 1e-6
MIN_SPEEDUP = 3.0


def _seed_fixed_loop():
    results = []
    for amp, load in CELLS:
        ckt = build_rectifier_circuit(v_in_amplitude=amp, i_load=load)
        results.append(transient(ckt, T_STOP, DT, method="trap",
                                 use_ic=True))
    return results


def _adaptive_batch():
    family = [build_rectifier_circuit(v_in_amplitude=amp, i_load=load)
              for amp, load in CELLS]
    # min_dt = max_dt = DT pins the family to the reference grid, so
    # the comparison is pure per-step engine cost at identical
    # discretization (the deviation assertion then checks solver
    # agreement, and LTE adaptivity is exercised by its own tests and
    # the linear-bypass bench below).
    return transient_batch(family, T_STOP, DT, method="adaptive",
                           use_ic=True, min_dt=DT, max_dt=DT)


def test_bench_spice_adaptive(benchmark):
    t0 = time.perf_counter()
    refs = _seed_fixed_loop()
    t_seed = time.perf_counter() - t0
    t0 = time.perf_counter()
    refs2 = _seed_fixed_loop()
    t_seed = min(t_seed, time.perf_counter() - t0)

    batch = benchmark.pedantic(_adaptive_batch, rounds=3, iterations=1)
    t_batch = benchmark.stats.stats.min

    assert batch.t.size == len(refs[0].t), "grids must match for parity"
    deviation = max(
        float(np.max(np.abs(ref.voltage("vo").v - batch.voltage("vo")[i])))
        for i, ref in enumerate(refs))
    speedup = t_seed / t_batch
    # Sanity on the seed side too: two identical fixed runs agree.
    seed_repro = max(
        float(np.max(np.abs(a.voltage("vo").v - b.voltage("vo").v)))
        for a, b in zip(refs, refs2))

    report("SPICE adaptive backend (rectifier study)", [
        ("cells", float(len(CELLS)), f"amplitude x load, {T_STOP*1e6:g} us"),
        ("seed fixed-step loop (s)", t_seed, "per-cell trap"),
        ("batched adaptive (s)", t_batch, "lockstep family"),
        ("speedup", speedup, f">= {MIN_SPEEDUP:g} required"),
        ("max |vo| deviation (V)", deviation,
         f"<= {MAX_DEVIATION:g} required"),
        ("seed run-to-run repro (V)", seed_repro, ""),
    ])
    assert deviation <= MAX_DEVIATION
    assert speedup >= MIN_SPEEDUP


def test_bench_spice_adaptive_linear_bypass(benchmark):
    """Ungated companion: on a linear circuit the adaptive backend
    prefactors the step matrix once and skips Newton entirely; LTE
    growth then cuts the step count on the smooth RC charge curve."""
    from repro.spice import Circuit

    def rc():
        ckt = Circuit("rc")
        ckt.add_vsource("V1", "in", "0", 2.75)
        ckt.add_resistor("R1", "in", "out", 1e3)
        ckt.add_capacitor("C1", "out", "0", 1e-6, ic=0.0)
        return ckt

    tau = 1e-3

    def run():
        return transient(rc(), t_stop=5 * tau, dt=tau / 200,
                         method="adaptive", use_ic=True)

    t0 = time.perf_counter()
    fixed = transient(rc(), t_stop=5 * tau, dt=tau / 200, method="trap",
                      use_ic=True)
    t_fixed = time.perf_counter() - t0
    result = benchmark(run)
    v = result.voltage("out")
    err = float(np.max(np.abs(
        v.v - 2.75 * (1.0 - np.exp(-v.t / tau)))))
    report("SPICE adaptive linear bypass (RC)", [
        ("fixed steps", float(len(fixed.t) - 1), "trap, tau/200"),
        ("adaptive steps", float(len(result.t) - 1), "LTE-grown"),
        ("fixed time (s)", t_fixed, ""),
        ("adaptive time (s)", benchmark.stats.stats.min, ""),
        ("max err vs analytic (V)", err, ""),
    ])
    assert len(result.t) < len(fixed.t) / 5
    assert err < 5e-3
