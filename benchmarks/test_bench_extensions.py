"""Benches for the extension studies (beyond the paper's figures).

* Monte-Carlo corners (the paper's "future work": characterization)
* closed-loop adaptive power control (the ref [17] direction)
* thermal / SAR audit (the Section I "low thermal dissipation" claim)
* secure-telemetry overhead (the Section I security requirement)
"""

import pytest

from conftest import report
from repro.comms import SecureChannel, paired_channels
from repro.core import AdaptivePowerController, PAPER, \
    RemotePoweringSystem
from repro.link import TISSUE_LIBRARY
from repro.power import ImplantThermalModel, implant_thermal_check
from repro.variability import (
    ask_margin_study,
    charge_time_study,
    vox_accuracy_study,
)


def test_bench_montecarlo_corners(once):
    def run():
        return (vox_accuracy_study(n_samples=250),
                charge_time_study(n_samples=80),
                ask_margin_study(n_samples=200))

    vox, charge, margin = once(run)
    rows = []
    for res in (vox["vox_mv"], charge["charge_time_us"],
                charge["v_equilibrium"], margin["margin_frac"]):
        rows.append(res.summary_row())
    report("Monte-Carlo corners",
           rows, header=["metric", "mean", "std", "worst lo",
                         "worst hi", "yield"])
    assert vox["vox_mv"].yield_fraction > 0.9
    assert charge["charge_time_us"].yield_fraction > 0.9
    assert margin["margin_frac"].worst_low > 0.0


def test_bench_adaptive_power_control(once):
    """Distance disturbance rejection: fixed drive vs the closed loop."""

    def run():
        system = RemotePoweringSystem(distance=10e-3)
        ctrl = AdaptivePowerController()

        def profile(t):
            if t < 40e-3:
                return 8e-3
            if t < 80e-3:
                return 14e-3
            return 11e-3

        steps = ctrl.run(system, profile, t_stop=120e-3)
        stats = ctrl.regulation_statistics(steps, settle_fraction=0.25)
        # Fixed-drive comparison: what would the rail do at 14 mm?
        p_fixed = system.available_power(14e-3)
        return stats, steps, p_fixed

    stats, steps, p_fixed = once(run)
    frac, v_min, v_max, mean_drive = stats
    report("Adaptive power control (8 -> 14 -> 11 mm profile)", [
        ("fraction in window", frac, "target ~1"),
        ("min Vo (V)", v_min, "transient dip at the step"),
        ("max Vo (V)", v_max, "<= 3.3"),
        ("mean drive scale", mean_drive, "1.0 = calibrated"),
        ("fixed-drive P @ 14 mm (mW)", p_fixed * 1e3,
         "marginal without control"),
    ])
    # An abrupt 6 mm coupling step dips the rail while the loop reacts
    # (Co discharges in ~2 ms); the loop must recover quickly and hold
    # the window the rest of the time.
    assert frac > 0.9
    assert v_min > 1.6
    recovered = [s for s in steps if s.time > 100e-3]
    assert all(s.v_rect >= PAPER.v_rect_minimum for s in recovered)


def test_bench_thermal_audit(once):
    def run():
        model = ImplantThermalModel.for_slab(38e-3, 2e-3, 0.544e-3)
        rows = []
        for p_mw in (1.0, 5.0, 15.0):
            rows.append((p_mw, model.temperature_rise(p_mw * 1e-3)))
        audit = implant_thermal_check(
            p_received=5e-3, p_delivered_to_load=0.63e-3,
            i_tx_amplitude=0.23, coil_radius=16e-3, coil_turns=4,
            distance=10e-3, tissue=TISSUE_LIBRARY["muscle"])
        return rows, audit

    rows, audit = once(run)
    report("Implant heating vs dissipated power",
           rows, header=["P (mW)", "dT (degC)"])
    report("Operating-point audit", [
        ("temperature rise (degC)", audit.temp_rise, "limit: 1.0"),
        ("tissue SAR (W/kg)", audit.sar, "limit: 2.0"),
        ("verdict", "PASS" if audit.ok else "FAIL", ""),
    ])
    assert audit.ok
    # Even the full 15 mW of the 6 mm point stays inside the limit.
    assert rows[-1][1] < 1.0


def test_bench_secure_telemetry_overhead(once):
    """Cost of the security layer at the paper's link rates."""

    def run():
        tx, rx = paired_channels(bytes(range(16)))
        payload = bytes(32)  # 16 ADC samples
        wire = tx.seal(payload)
        assert rx.open(wire) == payload
        t_plain_up = len(payload) * 8 / PAPER.uplink_bit_rate
        t_sec_up = len(wire) * 8 / PAPER.uplink_bit_rate
        return len(payload), len(wire), t_plain_up, t_sec_up

    n_plain, n_wire, t_plain, t_sec = once(run)
    report("Secure telemetry overhead (32-byte payload)", [
        ("plaintext bytes", n_plain, ""),
        ("wire bytes (ctr+ct+tag)", n_wire, "+8 overhead"),
        ("uplink airtime plain (ms)", t_plain * 1e3, "@66.6 kbps"),
        ("uplink airtime secured (ms)", t_sec * 1e3, ""),
        ("overhead", f"{(t_sec / t_plain - 1) * 100:.0f}%", ""),
    ])
    assert n_wire == n_plain + SecureChannel.OVERHEAD
    assert (t_sec / t_plain - 1) < 0.5
