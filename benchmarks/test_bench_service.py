"""Serving acceptance bench — micro-batched request coalescing.

The acceptance criteria for the service layer:

* 64 concurrent single-cell requests served through the micro-batching
  scheduler complete >= 5x faster end-to-end than the same 64 requests
  executed sequentially, one engine call each.  The win is *batching*
  (one vectorized engine invocation instead of 64), not parallelism —
  the assertion holds on a 1-CPU host and is therefore always
  enforced, unlike the multiprocessing speedups gated on
  ``os.cpu_count()``;
* every service response is bitwise-identical to a direct
  ``SweepOrchestrator`` run of the same cells (JSON floats round-trip
  exactly, so this is checked over the actual wire format);
* a closed-loop load-generator pass with overlapping client interest
  dedupes repeated cells and completes every request.
"""

import asyncio
import time

import numpy as np

from conftest import report
from repro import RemotePoweringSystem
from repro.core import AdaptivePowerController
from repro.engine import Scenario, ScenarioBatch, SweepOrchestrator
from repro.service import (
    LoadGenerator,
    ServiceClient,
    SimRequest,
    SimulationService,
)

T_STOP = 50e-3
N_REQUESTS = 64


def single_cell_payloads():
    """64 distinct single-cell sweep requests (8 distances x 8 loads)
    — the 'many clients each asking one question' workload."""
    distances = np.linspace(6e-3, 20e-3, 8)
    loads = np.linspace(200e-6, 1.3e-3, 8)
    return [
        {"kind": "sweep", "t_stop": T_STOP,
         "axes": {"distance": [float(d)], "i_load": [float(i)]}}
        for d in distances for i in loads
    ]


def test_bench_service_microbatch_speedup(once):
    """64 concurrent single-cell requests: micro-batched service vs
    one-engine-call-per-request, >= 5x, bitwise parity."""
    system = RemotePoweringSystem(distance=10e-3)
    controller = AdaptivePowerController()
    payloads = single_cell_payloads()
    requests = [SimRequest.from_payload(p) for p in payloads]

    def sequential():
        out = []
        for req in requests:
            orch = SweepOrchestrator()
            out.append(orch.run_control(
                ScenarioBatch(req.scenarios), system, controller,
                T_STOP))
        return out

    async def serviced():
        service = SimulationService(system=system,
                                    controller=controller,
                                    window=20e-3, max_batch=256)
        client = ServiceClient(service)
        async with service:
            ids = await asyncio.gather(
                *(client.submit(p) for p in payloads))
            results = await asyncio.gather(
                *(client.result(i) for i in ids))
        return results, service

    def timed():
        t0 = time.perf_counter()
        sequential()
        t_seq = time.perf_counter() - t0
        t0 = time.perf_counter()
        results, service = asyncio.run(serviced())
        t_svc = time.perf_counter() - t0
        return t_seq, t_svc, results, service

    t_seq, t_svc, results, service = once(timed)
    speedup = t_seq / t_svc
    stats = service.scheduler.stats

    report("Micro-batched service vs sequential engine calls", [
        ("concurrent requests", float(N_REQUESTS), "single-cell each"),
        ("sequential, 1 call/request (s)", t_seq, ""),
        ("service, micro-batched (s)", t_svc,
         "includes batching window"),
        ("speedup", speedup, "acceptance: >= 5x (valid on 1 CPU)"),
        ("engine batches", float(stats.batches),
         "coalescing did the work"),
        ("mean batch size (cells)",
         float(stats.as_dict()["mean_batch_cells"]), ""),
    ])

    # Coalescing must actually have happened: far fewer engine
    # dispatches than requests.
    assert stats.batches <= 4
    assert stats.cells_requested == N_REQUESTS
    assert speedup >= 5.0

    # Bitwise parity over the wire format: every response equals a
    # direct orchestrator run of the same 64 cells.
    batch = ScenarioBatch(
        [req.scenarios[0] for req in requests])
    ref = SweepOrchestrator().run_control(batch, system, controller,
                                          T_STOP)
    for i, doc in enumerate(results):
        cell = doc["cells"][0]
        assert np.array_equal(np.array(cell["v_rect"]), ref.v_rect[i])
        assert np.array_equal(np.array(cell["drive_scale"]),
                              ref.drive_scale[i])
        assert np.array_equal(np.array(cell["p_delivered"]),
                              ref.p_delivered[i])
        assert np.array_equal(np.array(cell["saturated"]),
                              ref.saturated[i])
    assert np.array_equal(np.array(results[0]["times"]), ref.times)


def test_bench_service_closed_loop_dedup(once, tmp_path):
    """Closed-loop load: 8 clients x 48 requests drawn from a 12-cell
    interest set.  Overlapping interest must be served by dedup + the
    result store, not recomputation."""
    from repro.engine import ResultStore

    system = RemotePoweringSystem(distance=10e-3)
    controller = AdaptivePowerController()
    distances = np.linspace(7e-3, 18e-3, 12)
    payloads = [
        {"kind": "sweep", "t_stop": 20e-3,
         "axes": {"distance": [float(distances[k % 12])],
                  "i_load": [352e-6]}}
        for k in range(48)
    ]

    async def drive():
        service = SimulationService(
            system=system, controller=controller,
            store=ResultStore(tmp_path / "serve-cache"),
            window=5e-3, max_batch=256)
        async with service:
            generator = LoadGenerator(ServiceClient(service),
                                      payloads, concurrency=8)
            summary = await generator.run()
        return summary, service

    summary, service = once(lambda: asyncio.run(drive()))
    stats = service.scheduler.stats
    sdict = stats.as_dict()

    report("Closed-loop service load (8 clients, 48 requests)", [
        ("completed", float(summary["completed"]), "of 48"),
        ("throughput (req/s)", summary["throughput_rps"], ""),
        ("p50 latency (s)", summary["latency"]["p50_s"],
         "includes batching window"),
        ("p90 latency (s)", summary["latency"]["p90_s"], ""),
        ("cells computed", float(stats.cells_computed),
         "12 distinct cells exist"),
        ("dedup + cache rate",
         sdict["dedup_rate"] + sdict["cache_hit_rate"],
         "shared interest not recomputed"),
    ])

    assert summary["completed"] == 48
    assert summary["failed"] == 0
    # 12 distinct cells; everything else must come from in-batch
    # dedup or the content-addressed store.
    assert stats.cells_computed == 12
    assert stats.cells_deduped + stats.cells_cached == 36


def test_bench_service_backpressure_sheds_cleanly():
    """Overload control (no timing): a full queue rejects typed-ly and
    the closed-loop client's retry path still lands every request."""
    from repro.service import QueueFullError

    system = RemotePoweringSystem(distance=10e-3)
    controller = AdaptivePowerController()

    async def drive():
        service = SimulationService(
            system=system, controller=controller,
            window=2e-3, max_pending=4)
        client = ServiceClient(service)
        rejected = 0
        # Un-started service: the fifth submit must be rejected.
        for k in range(5):
            try:
                await client.submit(
                    {"kind": "battery", "p_in": 5e-3,
                     "axes": {"i_load": [float(200e-6 + k * 1e-6)]}})
            except QueueFullError:
                rejected += 1
        assert rejected == 1
        async with service:
            # The retrying load generator pushes 12 more requests
            # through the 4-deep queue.
            generator = LoadGenerator(
                client,
                [{"kind": "battery", "p_in": 5e-3,
                  "axes": {"i_load": [float(210e-6 + k * 1e-6)]}}
                 for k in range(12)],
                concurrency=6, retry_backoff=5e-3)
            summary = await generator.run()
        return summary, service

    summary, service = asyncio.run(drive())
    assert summary["completed"] == 12
    assert summary["failed"] == 0
    assert service.stats()["rejected"] >= 1


def test_bench_scenario_reuse_sanity():
    """The coalesced batch is plain ScenarioBatch machinery — a
    Scenario built from a service request equals a hand-built one
    (guards the request -> engine translation layer)."""
    req = SimRequest.from_payload(
        {"kind": "sweep", "t_stop": 10e-3,
         "axes": {"distance": [9e-3], "i_load": [400e-6],
                  "duty_cycle": [0.8]}})
    sc = req.scenarios[0]
    ref = Scenario(distance=9e-3, i_load=400e-6, duty_cycle=0.8,
                   label=sc.label)
    assert sc == ref
